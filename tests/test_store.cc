/**
 * @file
 * Unit tests: the crash-safe campaign result store (sweep/store).
 *
 * The load-bearing guarantees certified here:
 *  - the canonical config serialisation and its hash are pinned to
 *    golden values, so an accidental format change (which silently
 *    invalidates every cached result in every store) fails loudly;
 *  - records round-trip bit-exactly, and every class of corruption
 *    (truncation, bit flips, a record filed under the wrong key) is
 *    self-healed: discarded and recomputed, never crashed on and
 *    never returned as someone else's result;
 *  - a campaign resumed against a warm store produces a canonical
 *    manifest byte-identical to a straight-line run — the property
 *    the kill -9 CI job checks end to end.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "sweep/campaign.hh"
#include "sweep/report.hh"
#include "sweep/store/result_store.hh"
#include "sweep/store/store_key.hh"

namespace fs = std::filesystem;

namespace rab
{
namespace
{

/** Fresh per-test store root under the gtest temp dir. */
std::string
storeRoot(const std::string &name)
{
    const fs::path root =
        fs::path(::testing::TempDir()) / ("rabstore-" + name);
    fs::remove_all(root);
    return root.string();
}

CampaignSpec
storeSpec()
{
    CampaignSpec spec;
    spec.name = "store-grid";
    spec.workloads = {"mcf", "libq"};
    spec.variants = {makeVariant(RunaheadConfig::kBaseline, false),
                     makeVariant(RunaheadConfig::kHybrid, false)};
    spec.instructions = 2'000;
    spec.warmup = 500;
    return spec;
}

/** A synthetic completed point (no simulation needed). */
PointResult
syntheticResult()
{
    PointResult pr;
    pr.point.index = 3;
    pr.point.workload = "mcf";
    pr.point.variant = "Hybrid";
    pr.point.runahead = RunaheadConfig::kHybrid;
    pr.point.seed = 42;
    pr.ok = true;
    pr.ran = true;
    pr.result.instructions = 2'000;
    pr.result.cycles = 5'431;
    pr.result.ipc = 0.368;
    pr.result.mpki = 12.5;
    pr.result.dramRequests = 77;
    pr.result.energy.totalJ = 1.25e-3;
    pr.stats = {{"core.commit.committed", 2000.0},
                {"mem.dram.reads", 77.0}};
    pr.wallSeconds = 0.125;
    return pr;
}

StoreKey
keyFor(const CampaignSpec &spec, const PointResult &pr)
{
    return makeStoreKey(spec, pr.point, "deadbeef");
}

// ---------------------------------------------------------------------
// Key derivation
// ---------------------------------------------------------------------

TEST(StoreKey, GoldenConfigSerialisation)
{
    // The canonical config string IS the cache-key format. Any change
    // here — field order, spelling, a new field — invalidates every
    // record in every store on disk. That can be the right call, but
    // it must be a *decision*: update this golden text and bump
    // rab-config-key-v4 deliberately.
    CampaignSpec spec = storeSpec();
    const std::vector<SweepPoint> grid = expandGrid(spec);
    const SweepPoint &hybrid = grid[1]; // mcf x Hybrid
    EXPECT_EQ(canonicalConfigString(spec, hybrid),
              "schema=rab-config-key-v4\n"
              "variant=Hybrid\n"
              "runahead=Hybrid\n"
              "prefetch=0\n"
              "warmup=500\n"
              "fast_forward=1\n"
              "check_level=0\n"
              "check_policy=0\n"
              "cores=1\n"
              "engine=0\n"
              "warmup_mode=inline\n"
              "snapshot=-\n");
    // A snapshot-warmed point keys to the exact image it forked from.
    EXPECT_EQ(canonicalConfigString(spec, hybrid,
                                    "1/00c0ffee00c0ffee"),
              "schema=rab-config-key-v4\n"
              "variant=Hybrid\n"
              "runahead=Hybrid\n"
              "prefetch=0\n"
              "warmup=500\n"
              "fast_forward=1\n"
              "check_level=0\n"
              "check_policy=0\n"
              "cores=1\n"
              "engine=0\n"
              "warmup_mode=snapshot\n"
              "snapshot=1/00c0ffee00c0ffee\n");
    // The retired formats must stay byte-stable too: they document
    // exactly what pre-v4 records were keyed under, and the
    // divergences below are what reject them.
    EXPECT_EQ(canonicalConfigStringV3(spec, hybrid),
              "schema=rab-config-key-v3\n"
              "variant=Hybrid\n"
              "runahead=Hybrid\n"
              "prefetch=0\n"
              "warmup=500\n"
              "fast_forward=1\n"
              "check_level=0\n"
              "check_policy=0\n"
              "cores=1\n"
              "engine=0\n");
    EXPECT_EQ(canonicalConfigStringV2(spec, hybrid),
              "schema=rab-config-key-v2\n"
              "variant=Hybrid\n"
              "runahead=Hybrid\n"
              "prefetch=0\n"
              "warmup=500\n"
              "fast_forward=1\n"
              "check_level=0\n"
              "check_policy=0\n"
              "cores=1\n");
    EXPECT_EQ(canonicalConfigStringV1(spec, hybrid),
              "schema=rab-config-key-v1\n"
              "variant=Hybrid\n"
              "runahead=Hybrid\n"
              "prefetch=0\n"
              "warmup=500\n"
              "fast_forward=1\n"
              "check_level=0\n"
              "check_policy=0\n");
}

TEST(StoreKey, EngineConfigsKeyDistinctly)
{
    // CRE and its non-engine base (buffer-cc) share every v2 field
    // but not the engine: they must never alias in the store. The
    // engine bit also derives from per-core policies of a mix.
    CampaignSpec spec = storeSpec();
    spec.variants = {makeVariant(RunaheadConfig::kRunaheadBufferCC,
                                 false),
                     makeVariant(RunaheadConfig::kCRE, false)};
    const std::vector<SweepPoint> grid = expandGrid(spec);
    EXPECT_NE(configHashHex(spec, grid[0]),
              configHashHex(spec, grid[1]));
    EXPECT_NE(canonicalConfigString(spec, grid[0]),
              canonicalConfigString(spec, grid[1]));

    CampaignSpec mix = storeSpec();
    mix.workloads.clear();
    mix.variants = {parseVariantLabel("cre|baseline")};
    mix.mixes = {{"duo", {"mcf", "libq"}}};
    const SweepPoint p = expandGrid(mix)[0];
    ASSERT_TRUE(p.isMix());
    EXPECT_NE(canonicalConfigString(mix, p)
                  .find("engine=1\n"),
              std::string::npos);
}

TEST(StoreKey, GoldenConfigHash)
{
    // Golden hashes of the serialisations above: byte-identical
    // across processes, hosts and compilers (FNV-1a over fixed
    // strings). All versions stay pinned — the retired ones so each
    // rejection boundary is itself regression-tested — and must never
    // collide.
    CampaignSpec spec = storeSpec();
    const std::vector<SweepPoint> grid = expandGrid(spec);
    EXPECT_EQ(configHashHex(spec, grid[1]),
              hex64(fnv1a64(canonicalConfigString(spec, grid[1]))));
    EXPECT_EQ(configHashHex(spec, grid[1]), "38b4ce0b1c397aca");
    EXPECT_EQ(hex64(fnv1a64(canonicalConfigStringV3(spec, grid[1]))),
              "315f5b6d103e06f3");
    EXPECT_EQ(hex64(fnv1a64(canonicalConfigStringV2(spec, grid[1]))),
              "5a868bdeb562fd6f");
    EXPECT_EQ(hex64(fnv1a64(canonicalConfigStringV1(spec, grid[1]))),
              "bd2a9d1ecb27994a");
    // A non-empty snapshot id changes the key (and only the key —
    // the id is never parsed back out of it).
    EXPECT_NE(configHashHex(spec, grid[1], "1/00c0ffee00c0ffee"),
              configHashHex(spec, grid[1]));
}

TEST(StoreKey, MixPointsKeyOnPerCoreAssignment)
{
    // Two mixes that differ only in one core's workload, and two
    // variants that differ only in one core's policy, must hash to
    // distinct keys; homogeneous relabelings of the same assignment
    // must not.
    CampaignSpec spec = storeSpec();
    spec.workloads.clear();
    spec.variants = {parseVariantLabel("hybrid|baseline")};
    spec.mixes = {makeMix4()};
    CampaignSpec other = spec;
    other.mixes[0].workloads[3] = "lbm";

    const SweepPoint a = expandGrid(spec)[0];
    const SweepPoint b = expandGrid(other)[0];
    EXPECT_TRUE(a.isMix());
    EXPECT_NE(canonicalConfigString(spec, a),
              canonicalConfigString(other, b));
    EXPECT_NE(configHashHex(spec, a), configHashHex(other, b));

    CampaignSpec swapped = spec;
    swapped.variants = {parseVariantLabel("baseline|hybrid")};
    const SweepPoint c = expandGrid(swapped)[0];
    EXPECT_NE(configHashHex(spec, a), configHashHex(swapped, c));
}

TEST(StoreKey, StableAcrossThreadsAndFieldWrites)
{
    // The hash must not depend on which thread computes it or on the
    // order spec fields were assigned in.
    CampaignSpec a = storeSpec();
    CampaignSpec b;
    b.warmup = 500;            // assigned in a different order
    b.instructions = 2'000;
    b.name = "store-grid";
    b.variants = a.variants;
    b.workloads = a.workloads;

    const SweepPoint point = expandGrid(a)[2];
    const std::string reference = configHashHex(a, point);
    EXPECT_EQ(configHashHex(b, point), reference);

    std::vector<std::string> hashes(8);
    std::vector<std::thread> pool;
    for (std::size_t i = 0; i < hashes.size(); ++i) {
        pool.emplace_back([&, i] {
            hashes[i] = configHashHex(a, point);
        });
    }
    for (std::thread &t : pool)
        t.join();
    for (const std::string &h : hashes)
        EXPECT_EQ(h, reference);
}

TEST(StoreKey, EveryFieldChangesTheKey)
{
    CampaignSpec spec = storeSpec();
    const SweepPoint point = expandGrid(spec)[0];
    const std::string base =
        makeStoreKey(spec, point, "deadbeef").hashHex();

    CampaignSpec warm = spec;
    warm.warmup = 501;
    EXPECT_NE(makeStoreKey(warm, point, "deadbeef").hashHex(), base);

    CampaignSpec insn = spec;
    insn.instructions = 2'001;
    EXPECT_NE(makeStoreKey(insn, point, "deadbeef").hashHex(), base);

    CampaignSpec checked = spec;
    checked.checkLevel = CheckLevel::kFull;
    EXPECT_NE(makeStoreKey(checked, point, "deadbeef").hashHex(), base);

    CampaignSpec noff = spec;
    noff.fastForward = false;
    EXPECT_NE(makeStoreKey(noff, point, "deadbeef").hashHex(), base);

    SweepPoint other = point;
    other.seed = 9;
    EXPECT_NE(makeStoreKey(spec, other, "deadbeef").hashHex(), base);

    SweepPoint variant = expandGrid(spec)[1];
    EXPECT_NE(makeStoreKey(spec, variant, "deadbeef").hashHex(), base);

    EXPECT_NE(makeStoreKey(spec, point, "cafef00d").hashHex(), base);
}

// ---------------------------------------------------------------------
// Record round trip + self healing
// ---------------------------------------------------------------------

TEST(ResultStore, RoundTripsAResult)
{
    ResultStore store(storeRoot("roundtrip"));
    ASSERT_TRUE(store.ok()) << store.error();

    const CampaignSpec spec = storeSpec();
    const PointResult original = syntheticResult();
    const StoreKey key = keyFor(spec, original);

    EXPECT_EQ(store.lookup(key), std::nullopt);
    EXPECT_EQ(store.misses(), 1u);

    ASSERT_TRUE(store.put(key, original));
    EXPECT_EQ(store.stored(), 1u);

    const auto cached = store.lookup(key);
    ASSERT_TRUE(cached.has_value());
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_TRUE(cached->ok);
    EXPECT_TRUE(cached->ran);
    EXPECT_TRUE(cached->cached);
    EXPECT_EQ(cached->point.workload, original.point.workload);
    EXPECT_EQ(cached->point.variant, original.point.variant);
    EXPECT_EQ(cached->point.seed, original.point.seed);
    EXPECT_EQ(cached->result.cycles, original.result.cycles);
    EXPECT_EQ(cached->result.ipc, original.result.ipc);
    EXPECT_EQ(cached->result.energy.totalJ,
              original.result.energy.totalJ);
    EXPECT_EQ(cached->stats, original.stats);
    EXPECT_EQ(cached->wallSeconds, original.wallSeconds);
}

TEST(ResultStore, RejectsFailedResults)
{
    ResultStore store(storeRoot("failed"));
    ASSERT_TRUE(store.ok()) << store.error();

    PointResult failed = syntheticResult();
    failed.ok = false;
    failed.error = "WatchdogTimeout: synthetic";
    const StoreKey key = keyFor(storeSpec(), failed);

    // A failure must be re-attempted next run, never replayed.
    EXPECT_FALSE(store.put(key, failed));
    EXPECT_EQ(store.stored(), 0u);
    EXPECT_FALSE(fs::exists(store.recordPath(key)));
}

TEST(ResultStore, SelfHealsTruncatedRecord)
{
    ResultStore store(storeRoot("truncated"));
    ASSERT_TRUE(store.ok()) << store.error();
    const StoreKey key = keyFor(storeSpec(), syntheticResult());
    ASSERT_TRUE(store.put(key, syntheticResult()));

    // Chop the record mid-payload: the torn-write shape a crash
    // without the atomic rename would have produced.
    const std::string path = store.recordPath(key);
    const auto size = fs::file_size(path);
    fs::resize_file(path, size / 2);

    EXPECT_EQ(store.lookup(key), std::nullopt);
    EXPECT_EQ(store.corruptDiscarded(), 1u);
    EXPECT_FALSE(fs::exists(path)) << "corrupt record not unlinked";

    // The store recovers: a fresh put and lookup work again.
    ASSERT_TRUE(store.put(key, syntheticResult()));
    EXPECT_TRUE(store.lookup(key).has_value());
}

TEST(ResultStore, SelfHealsFlippedPayloadBit)
{
    ResultStore store(storeRoot("bitflip"));
    ASSERT_TRUE(store.ok()) << store.error();
    const StoreKey key = keyFor(storeSpec(), syntheticResult());
    ASSERT_TRUE(store.put(key, syntheticResult()));

    const std::string path = store.recordPath(key);
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekp(40); // Somewhere in the JSON payload.
    char byte = 0;
    file.seekg(40);
    file.get(byte);
    file.seekp(40);
    file.put(static_cast<char>(byte ^ 0x01));
    file.close();

    // CRC catches the flip; the record is discarded, not returned.
    EXPECT_EQ(store.lookup(key), std::nullopt);
    EXPECT_EQ(store.corruptDiscarded(), 1u);
}

TEST(ResultStore, KeyEchoRejectsMisfiledRecord)
{
    ResultStore store(storeRoot("misfiled"));
    ASSERT_TRUE(store.ok()) << store.error();
    const CampaignSpec spec = storeSpec();
    const PointResult pr = syntheticResult();
    const StoreKey key = keyFor(spec, pr);
    ASSERT_TRUE(store.put(key, pr));

    // File the (internally valid, CRC-correct) record under a
    // different key's path — the shape of a hash collision or a
    // mangled store directory.
    StoreKey other = key;
    other.seed = key.seed + 1;
    fs::create_directories(
        fs::path(store.recordPath(other)).parent_path());
    fs::copy_file(store.recordPath(key), store.recordPath(other));

    // The key echo inside the payload disagrees: miss, discard.
    EXPECT_EQ(store.lookup(other), std::nullopt);
    EXPECT_EQ(store.corruptDiscarded(), 1u);
    // The original record is untouched.
    EXPECT_TRUE(store.lookup(key).has_value());
}

TEST(ResultStore, RejectsStaleConfigSchemaRecords)
{
    // A record written before the rab-config-key-v4 bump carries a
    // stale (or missing) config_schema echo. Even when the file is
    // otherwise intact — magic, version, CRC and key echo all valid —
    // it predates the warmup-mode key fields and must read as a miss
    // (self-healed away), never as a hit.
    ResultStore store(storeRoot("prev4"));
    ASSERT_TRUE(store.ok()) << store.error();
    const CampaignSpec spec = storeSpec();
    const PointResult pr = syntheticResult();
    const StoreKey key = keyFor(spec, pr);
    ASSERT_TRUE(store.put(key, pr));

    // Rewrite the record in place with the schema echo downgraded to
    // v3, recomputing the CRC so only the schema gate can reject it.
    const std::string path = store.recordPath(key);
    std::string raw;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        raw = buffer.str();
    }
    constexpr std::size_t kHeader = 8 + 4 + 4 + 8;
    std::string payload = raw.substr(kHeader);
    const std::size_t at = payload.find("rab-config-key-v4");
    ASSERT_NE(at, std::string::npos);
    payload.replace(at, 17, "rab-config-key-v3");
    const std::uint32_t crc = crc32(payload.data(), payload.size());
    for (int i = 0; i < 4; ++i)
        raw[12 + i] = static_cast<char>((crc >> (8 * i)) & 0xFFu);
    raw = raw.substr(0, kHeader) + payload;
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(raw.data(), static_cast<std::streamsize>(raw.size()));
    }

    EXPECT_EQ(store.lookup(key), std::nullopt);
    EXPECT_EQ(store.corruptDiscarded(), 1u);
}

TEST(ResultStore, BadRootFailsClosed)
{
    ResultStore store("/proc/definitely/not/writable");
    EXPECT_FALSE(store.ok());
    EXPECT_FALSE(store.error().empty());
    // A failed store degrades to "no cache": put is a no-op, lookup
    // misses, nothing throws.
    const StoreKey key = keyFor(storeSpec(), syntheticResult());
    EXPECT_FALSE(store.put(key, syntheticResult()));
    EXPECT_EQ(store.lookup(key), std::nullopt);
}

// ---------------------------------------------------------------------
// Warmup-snapshot records
// ---------------------------------------------------------------------

SnapshotStoreKey
snapshotKey()
{
    SnapshotStoreKey key;
    key.gitSha = "deadbeef";
    key.warmupDigestHex = "00c0ffee00c0ffee";
    key.workload = "mcf";
    key.seed = 42;
    key.warmupInstructions = 500;
    key.formatVersion = 1;
    return key;
}

TEST(ResultStore, SnapshotRecordsRoundTrip)
{
    ResultStore store(storeRoot("snap"));
    ASSERT_TRUE(store.ok()) << store.error();
    const SnapshotStoreKey key = snapshotKey();

    EXPECT_EQ(store.lookupSnapshot(key), std::nullopt);
    EXPECT_EQ(store.snapshotMisses(), 1u);

    // Snapshot payloads are opaque binary including NULs — the store
    // must not treat them as text.
    const std::string payload("RABSNAP1\0\x01\xff warm state", 20);
    ASSERT_TRUE(store.putSnapshot(key, payload));
    EXPECT_EQ(store.snapshotStored(), 1u);

    const auto back = store.lookupSnapshot(key);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, payload);
    EXPECT_EQ(store.snapshotHits(), 1u);

    // Result records and snapshot records share a root without
    // colliding (different subdirectories, different magic).
    const CampaignSpec spec = storeSpec();
    const PointResult pr = syntheticResult();
    ASSERT_TRUE(store.put(keyFor(spec, pr), pr));
    EXPECT_TRUE(store.lookup(keyFor(spec, pr)).has_value());
    EXPECT_TRUE(store.lookupSnapshot(key).has_value());
}

TEST(ResultStore, SnapshotRecordsSelfHeal)
{
    ResultStore store(storeRoot("snapheal"));
    ASSERT_TRUE(store.ok()) << store.error();
    const SnapshotStoreKey key = snapshotKey();
    const std::string payload(4096, '\x5a');
    ASSERT_TRUE(store.putSnapshot(key, payload));
    const std::string path = store.snapshotPath(key);

    const auto readRaw = [&] {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        return buffer.str();
    };
    const auto writeRaw = [&](const std::string &raw) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(raw.data(), static_cast<std::streamsize>(raw.size()));
    };
    const std::string good = readRaw();

    // Truncation: miss, discard, and a re-put works.
    writeRaw(good.substr(0, good.size() / 2));
    EXPECT_EQ(store.lookupSnapshot(key), std::nullopt);
    EXPECT_EQ(store.corruptDiscarded(), 1u);
    EXPECT_FALSE(fs::exists(path));

    // Bit flip in the snapshot bytes: CRC catches it.
    std::string flipped = good;
    flipped[flipped.size() - 7] ^= 0x10;
    writeRaw(flipped);
    EXPECT_EQ(store.lookupSnapshot(key), std::nullopt);
    EXPECT_EQ(store.corruptDiscarded(), 2u);

    // Key-echo mismatch (a misfiled image): CRC-valid, still a miss —
    // a foreign warmup image must never be forked from.
    writeRaw(good);
    SnapshotStoreKey other = key;
    other.warmupDigestHex = "ffffffffffffffff";
    std::error_code ec;
    fs::copy_file(path, store.snapshotPath(other),
                  fs::copy_options::overwrite_existing, ec);
    ASSERT_FALSE(ec);
    EXPECT_EQ(store.lookupSnapshot(other), std::nullopt);
    EXPECT_EQ(store.corruptDiscarded(), 3u);
    // The correctly-filed record still reads back.
    EXPECT_TRUE(store.lookupSnapshot(key).has_value());
}

// ---------------------------------------------------------------------
// Campaign integration: resume == straight line
// ---------------------------------------------------------------------

TEST(ResultStore, ResumedCampaignIsByteIdentical)
{
    const CampaignSpec spec = storeSpec();

    // Reference: no store at all.
    const std::string reference =
        campaignManifest(runCampaign(spec, 2), /*canonical=*/true)
            .dump();

    ResultStore store(storeRoot("resume"));
    ASSERT_TRUE(store.ok()) << store.error();
    CampaignRunOptions options;
    options.store = &store;

    // Run 1: cold store — everything simulated, everything persisted.
    const CampaignResult cold = runCampaign(spec, 2, options);
    EXPECT_EQ(cold.storeHits, 0u);
    EXPECT_EQ(cold.storeMisses, spec.pointCount());
    EXPECT_EQ(store.stored(), spec.pointCount());
    EXPECT_EQ(campaignManifest(cold, true).dump(), reference);

    // Run 2: warm store — nothing simulated, byte-identical output.
    const CampaignResult warm = runCampaign(spec, 2, options);
    EXPECT_EQ(warm.storeHits, spec.pointCount());
    EXPECT_EQ(warm.storeMisses, 0u);
    for (const PointResult &p : warm.points)
        EXPECT_TRUE(p.cached);
    EXPECT_EQ(campaignManifest(warm, true).dump(), reference);
}

TEST(ResultStore, InterruptedCampaignResumesWhereItDied)
{
    const CampaignSpec spec = storeSpec();
    const std::string reference =
        campaignManifest(runCampaign(spec, 1), /*canonical=*/true)
            .dump();

    ResultStore store(storeRoot("interrupt"));
    ASSERT_TRUE(store.ok()) << store.error();

    // Run 1 is interrupted after two points — the cooperative-stop
    // shape of Ctrl-C (kill -9 mid-write is the CI crash job; the
    // store's atomic rename makes the two equivalent).
    std::atomic<bool> stop{false};
    std::atomic<int> completed{0};
    CampaignRunOptions options;
    options.store = &store;
    options.stop = &stop;
    options.onPoint = [&](const PointResult &) {
        if (++completed >= 2)
            stop = true;
    };
    const CampaignResult partial = runCampaign(spec, 1, options);
    EXPECT_TRUE(partial.interrupted);
    EXPECT_GT(partial.skippedCount(), 0u);
    const Json partial_manifest = campaignManifest(partial, true);
    EXPECT_TRUE(
        partial_manifest.at("campaign").at("interrupted").asBool());
    EXPECT_GT(
        partial_manifest.at("campaign").at("skipped_points").asU64(),
        0u);

    // Run 2: finishes the remainder; the merged cached+fresh manifest
    // is byte-identical to a never-interrupted run.
    CampaignRunOptions resume;
    resume.store = &store;
    const CampaignResult full = runCampaign(spec, 1, resume);
    EXPECT_FALSE(full.interrupted);
    EXPECT_EQ(full.storeHits, static_cast<std::uint64_t>(completed));
    EXPECT_EQ(campaignManifest(full, true).dump(), reference);
}

TEST(ResultStore, ConfigHookBypassesTheStore)
{
    CampaignSpec spec = storeSpec();
    spec.workloads = {"mcf"};
    spec.variants = {makeVariant(RunaheadConfig::kBaseline, false)};
    // A hook's effect is invisible to the config hash: caching would
    // return results the hook never saw.
    spec.configHook = [](std::size_t, SimConfig &) {};

    ResultStore store(storeRoot("hook"));
    ASSERT_TRUE(store.ok()) << store.error();
    CampaignRunOptions options;
    options.store = &store;
    const CampaignResult campaign = runCampaign(spec, 1, options);
    EXPECT_EQ(campaign.failedCount(), 0u);
    EXPECT_EQ(store.stored(), 0u);
    EXPECT_EQ(store.hits() + store.misses(), 0u);
}

// ---------------------------------------------------------------------
// Retry / quarantine
// ---------------------------------------------------------------------

TEST(Recovery, RetryableFailureClassification)
{
    EXPECT_TRUE(isRetryableFailure(
        "WatchdogTimeout: forward progress lost at cycle 10"));
    EXPECT_FALSE(isRetryableFailure("InvariantViolation in 'rob'"));
    EXPECT_FALSE(isRetryableFailure("error: unknown workload"));
    EXPECT_FALSE(isRetryableFailure(""));
}

TEST(Recovery, DeterministicFaultIsQuarantined)
{
    CampaignSpec spec;
    spec.name = "quarantine";
    spec.workloads = {"mcf"};
    spec.variants = {makeVariant(RunaheadConfig::kHybrid, false)};
    spec.instructions = 5'000;
    spec.warmup = 1'000;
    spec.retryLimit = 1;
    spec.retryBackoffMs = 0; // No real sleeping in unit tests.
    // Every DRAM response dropped: the watchdog gives up identically
    // on every attempt, so retries must exhaust and quarantine.
    spec.configHook = [](std::size_t, SimConfig &config) {
        config.fault.enabled = true;
        config.fault.dramDropRate = 1.0;
        config.core.watchdog.cycles = 2'000;
    };

    const PointResult pr =
        runPointWithRecovery(spec, expandGrid(spec)[0]);
    EXPECT_FALSE(pr.ok);
    EXPECT_TRUE(pr.quarantined);
    EXPECT_EQ(pr.retries, 1);
    EXPECT_NE(pr.error.find("WatchdogTimeout"), std::string::npos);
    EXPECT_NE(pr.error.find("retry 1 of 1"), std::string::npos)
        << pr.error;

    // The quarantine verdict is part of the canonical manifest.
    CampaignResult campaign;
    campaign.spec = spec;
    campaign.points = {pr};
    const Json manifest = campaignManifest(campaign, true);
    EXPECT_TRUE(
        manifest.at("points").at(0).at("quarantined").asBool());
}

TEST(Recovery, StopFlagSkipsUnrunPoints)
{
    const CampaignSpec spec = storeSpec();
    std::atomic<bool> stop{true}; // Interrupt before the first claim.
    CampaignRunOptions options;
    options.stop = &stop;
    const CampaignResult campaign = runCampaign(spec, 2, options);
    EXPECT_TRUE(campaign.interrupted);
    EXPECT_EQ(campaign.skippedCount(), spec.pointCount());
    for (const PointResult &p : campaign.points) {
        EXPECT_FALSE(p.ran);
        EXPECT_EQ(p.error, "interrupted: point not run");
    }
}

} // namespace
} // namespace rab
