/**
 * @file
 * Unit tests: energy model, trace capture/replay, Simulation driver.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "core/simulation.hh"
#include "energy/energy_model.hh"
#include "trace/trace.hh"
#include "workloads/suite.hh"

namespace rab
{
namespace
{

// --------------------------------------------------------------------
// EnergyModel
// --------------------------------------------------------------------

TEST(EnergyModel, ComponentsSumToTotal)
{
    SimConfig config = makeConfig(RunaheadConfig::kBaseline, false);
    config.warmupInstructions = 0;
    config.instructions = 5'000;
    Simulation sim(config, buildSuiteWorkload("mcf"));
    sim.run();
    const EnergyModel model;
    const EnergyBreakdown e = model.compute(sim.core());
    EXPECT_GT(e.totalJ, 0.0);
    EXPECT_NEAR(e.totalJ,
                e.frontendJ + e.renameJ + e.windowJ + e.regfileJ
                    + e.executeJ + e.cacheJ + e.dramJ + e.runaheadJ
                    + e.leakageJ,
                e.totalJ * 1e-9);
    EXPECT_FALSE(e.toString().empty());
}

TEST(EnergyModel, MoreCyclesMoreLeakage)
{
    SimConfig config = makeConfig(RunaheadConfig::kBaseline, false);
    config.warmupInstructions = 0;
    config.instructions = 5'000;
    Simulation sim(config, buildSuiteWorkload("mcf"));
    sim.run();
    const EnergyModel model;
    const EnergyBreakdown half =
        model.compute(sim.core(), sim.core().cycle() / 2);
    const EnergyBreakdown full =
        model.compute(sim.core(), sim.core().cycle());
    EXPECT_GT(full.leakageJ, half.leakageJ * 1.9);
}

TEST(EnergyModel, TraditionalRunaheadBurnsMoreFrontendEnergy)
{
    const SimResult base = simulateWorkload(
        "mcf", RunaheadConfig::kBaseline, false, 20'000, 5'000);
    const SimResult ra = simulateWorkload(
        "mcf", RunaheadConfig::kRunahead, false, 20'000, 5'000);
    EXPECT_GT(ra.energy.frontendJ, base.energy.frontendJ * 1.5);
}

TEST(EnergyModel, BufferCheaperThanTraditional)
{
    const SimResult ra = simulateWorkload(
        "mcf", RunaheadConfig::kRunahead, false, 20'000, 5'000);
    const SimResult rb = simulateWorkload(
        "mcf", RunaheadConfig::kRunaheadBufferCC, false, 20'000, 5'000);
    EXPECT_LT(rb.energy.totalJ, ra.energy.totalJ);
}

// --------------------------------------------------------------------
// Trace
// --------------------------------------------------------------------

TEST(Trace, RoundTrip)
{
    const std::string path = ::testing::TempDir() + "/t1.rabt";
    {
        TraceWriter writer(path);
        DynUop u;
        u.seq = 1;
        u.pc = 10;
        u.sop.op = Opcode::kLoad;
        u.sop.dest = 1;
        u.sop.src1 = 2;
        u.effAddr = 0x1234;
        u.llcMiss = true;
        writer.record(u);
        u.seq = 2;
        u.pc = 11;
        u.sop = Uop{};
        u.sop.op = Opcode::kJump;
        u.actualTaken = true;
        writer.record(u);
    }
    TraceReader reader(path);
    EXPECT_EQ(reader.recordCount(), 2u);
    const auto records = reader.readAll();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].pc, 10u);
    EXPECT_EQ(records[0].addr, 0x1234u);
    EXPECT_TRUE(records[0].flags & TraceRecord::kFlagLlcMiss);
    EXPECT_EQ(records[1].addr, kNoAddr);
    EXPECT_TRUE(records[1].flags & TraceRecord::kFlagTaken);
    std::remove(path.c_str());
}

TEST(Trace, CaptureFromCoreAndSummarize)
{
    const std::string path = ::testing::TempDir() + "/t2.rabt";
    SimConfig config = makeConfig(RunaheadConfig::kBaseline, false);
    config.warmupInstructions = 0;
    config.instructions = 3'000;
    Simulation sim(config, buildSuiteWorkload("mcf"));
    {
        TraceWriter writer(path);
        sim.core().setCommitHook(
            [&](const DynUop &uop) { writer.record(uop); });
        sim.run();
    }
    const TraceSummary summary = summarizeTrace(path);
    EXPECT_GE(summary.totalUops, 3'000u);
    EXPECT_GT(summary.loads, 0u);
    EXPECT_GT(summary.branches, 0u);
    EXPECT_GT(summary.llcMisses, 0u);
    EXPECT_GT(summary.distinctLines, 100u);
    EXPECT_NEAR(summary.mpki,
                1000.0 * summary.llcMisses / summary.totalUops, 1e-9);
    EXPECT_FALSE(summary.toString().empty());
    std::remove(path.c_str());
}

TEST(Trace, SimulationEnableTraceCoversMeasuredRegionExactly)
{
    // The Simulation-integrated capture path (enableTrace / rabsim
    // --trace-out): the commit hook is installed at the warmup
    // boundary and cleared at the end of the measured region, so the
    // trace must agree record-for-record with the live run's measured
    // counters — same uop count, same LLC-miss-derived MPKI.
    const std::string path = ::testing::TempDir() + "/t4.rabt";
    SimConfig config = makeConfig(RunaheadConfig::kBaseline, false);
    config.warmupInstructions = 2'000;
    config.instructions = 5'000;
    Simulation sim(config, buildSuiteWorkload("mcf"));
    sim.enableTrace(path);
    const SimResult result = sim.run();

    TraceReader reader(path);
    EXPECT_EQ(reader.version(), 1u);
    // One record per measured-region committed uop; warmup commits
    // are excluded.
    EXPECT_EQ(reader.recordCount(), result.instructions);

    const TraceSummary summary = summarizeTrace(path);
    EXPECT_EQ(summary.totalUops, result.instructions);
    // The per-uop LLC-miss flag marks every uop whose line came from
    // DRAM, so loads that merge into an in-flight MSHR all carry the
    // flag while the live demand-miss counter ticks once per line.
    // Trace MPKI therefore sits at or slightly above the live figure.
    EXPECT_GE(summary.mpki, result.mpki - 1e-9);
    EXPECT_NEAR(summary.mpki, result.mpki, result.mpki * 0.02);
    std::remove(path.c_str());
}

TEST(Trace, RejectsGarbageFile)
{
    const std::string path = ::testing::TempDir() + "/t3.rabt";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("not a trace at all, just bytes", f);
    std::fclose(f);
    EXPECT_DEATH(TraceReader reader(path), "not a rab trace");
    std::remove(path.c_str());
}

// --------------------------------------------------------------------
// Simulation / SimConfig
// --------------------------------------------------------------------

TEST(SimConfig, FinalizeMapsRunaheadPolicies)
{
    SimConfig c = makeConfig(RunaheadConfig::kHybrid, true);
    EXPECT_TRUE(c.core.runahead.traditionalEnabled);
    EXPECT_TRUE(c.core.runahead.bufferEnabled);
    EXPECT_TRUE(c.core.runahead.chainCacheEnabled);
    EXPECT_TRUE(c.core.runahead.hybrid);
    EXPECT_TRUE(c.core.runahead.enhancements);
    EXPECT_TRUE(c.mem.prefetcher.enabled);
    EXPECT_TRUE(c.core.collectChainAnalysis);

    SimConfig b = makeConfig(RunaheadConfig::kRunaheadBuffer, false);
    EXPECT_FALSE(b.core.runahead.traditionalEnabled);
    EXPECT_TRUE(b.core.runahead.bufferEnabled);
    EXPECT_FALSE(b.core.runahead.chainCacheEnabled);
    EXPECT_FALSE(b.mem.prefetcher.enabled);
}

TEST(SimConfig, Table1StringMentionsKeyParameters)
{
    const SimConfig c = makeConfig(RunaheadConfig::kHybrid, true);
    const std::string s = c.table1String();
    EXPECT_NE(s.find("192 entry ROB"), std::string::npos);
    EXPECT_NE(s.find("92 entry reservation station"), std::string::npos);
    EXPECT_NE(s.find("32 KB I"), std::string::npos);
    EXPECT_NE(s.find("1 MB"), std::string::npos);
    EXPECT_NE(s.find("13.75 ns"), std::string::npos);
    EXPECT_NE(s.find("32 streams"), std::string::npos);
}

TEST(Simulation, WarmupExcludedFromMeasurement)
{
    SimConfig config = makeConfig(RunaheadConfig::kBaseline, false);
    config.warmupInstructions = 5'000;
    config.instructions = 10'000;
    Simulation sim(config, buildSuiteWorkload("mcf"));
    const SimResult r = sim.run();
    EXPECT_EQ(r.instructions, 10'000u); // not 15'000
    EXPECT_LT(r.cycles, sim.core().cycle());
}

TEST(Simulation, DeterministicAcrossRuns)
{
    const SimResult a = simulateWorkload(
        "soplex", RunaheadConfig::kHybrid, true, 10'000, 2'000);
    const SimResult b = simulateWorkload(
        "soplex", RunaheadConfig::kHybrid, true, 10'000, 2'000);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dramRequests, b.dramRequests);
    EXPECT_EQ(a.runaheadIntervals, b.runaheadIntervals);
    EXPECT_DOUBLE_EQ(a.energy.totalJ, b.energy.totalJ);
}

TEST(Simulation, ResultStringMentionsWorkloadAndConfig)
{
    const SimResult r = simulateWorkload(
        "libq", RunaheadConfig::kRunahead, false, 5'000, 1'000);
    const std::string s = r.toString();
    EXPECT_NE(s.find("libq"), std::string::npos);
    EXPECT_NE(s.find("Runahead"), std::string::npos);
}

} // namespace
} // namespace rab
