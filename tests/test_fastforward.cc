/**
 * @file
 * Fast-forward certification: the cycle-loop fast-forward engine
 * (Core::fastForwardHorizon / fastForwardTo) must be invisible in
 * every architectural and statistical observable. For all six
 * runahead configurations — and again under speculative fault
 * injection — a fast-forwarded run must produce a byte-identical
 * commit stream, identical cycle count, and an identical full
 * statistics payload (core + memory) compared to ticking every cycle.
 * Only the core.fastforward.* counters themselves may differ.
 *
 * Runs execute with the invariant checker at full strength, which
 * independently re-derives the quiescence conditions at every skipped
 * window (InvariantChecker::onFastForward), so a pass also certifies
 * the legality invariant, not just end-state equality.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/simulation.hh"
#include "reference_interpreter.hh"
#include "workloads/suite.hh"

namespace rab
{
namespace
{

using test::RefCommit;

constexpr RunaheadConfig kAllConfigs[] = {
    RunaheadConfig::kBaseline,         RunaheadConfig::kRunahead,
    RunaheadConfig::kRunaheadEnhanced, RunaheadConfig::kRunaheadBuffer,
    RunaheadConfig::kRunaheadBufferCC, RunaheadConfig::kHybrid,
};

/** Everything a differential pair compares. */
struct RunCapture
{
    std::vector<RefCommit> trace;
    std::map<std::string, double> stats;
    std::uint64_t cycles = 0;
    std::uint64_t ffWindows = 0;
    std::uint64_t ffSkipped = 0;
};

RunCapture
runOne(RunaheadConfig rc, bool fast_forward, bool faulted)
{
    SimConfig config = makeConfig(rc, /*prefetch=*/false);
    config.warmupInstructions = 2'000;
    config.instructions = 15'000;
    config.checkLevel = CheckLevel::kFull;
    config.fastForward = fast_forward;
    if (faulted) {
        // Speculative-only faults with the checker routing violations
        // to the degradation ladder: the stress case for the entry
        // memoisation and ladder-aware horizon caps.
        config.checkPolicy = CheckPolicy::kDegrade;
        config.fault.enabled = true;
        config.fault.seed = 7;
        config.fault.chainCacheRate = 0.1;
        config.fault.bufferUopRate = 0.1;
    }
    config.finalize();

    Simulation sim(config, buildSuiteWorkload("mcf"));
    RunCapture cap;
    sim.core().setCommitHook([&](const DynUop &uop) {
        RefCommit c;
        c.pc = uop.pc;
        c.result = uop.sop.hasDest() || uop.isStore() ? uop.result : 0;
        c.addr = uop.sop.isMem() ? uop.effAddr : kNoAddr;
        c.taken = uop.isControl() && uop.actualTaken;
        cap.trace.push_back(c);
    });
    const SimResult result = sim.run();
    cap.cycles = result.cycles;

    cap.stats = sim.core().stats().collect();
    const std::map<std::string, double> mem = sim.memory().stats().collect();
    cap.stats.insert(mem.begin(), mem.end());
    // The engine's own window counters are the one legitimate
    // difference between the two runs: pull them out of the payload
    // before comparing, but keep them for the did-it-engage asserts.
    for (auto it = cap.stats.begin(); it != cap.stats.end();) {
        if (it->first.rfind("core.fastforward.", 0) == 0) {
            if (it->first == "core.fastforward.windows")
                cap.ffWindows = static_cast<std::uint64_t>(it->second);
            if (it->first == "core.fastforward.skipped_cycles")
                cap.ffSkipped = static_cast<std::uint64_t>(it->second);
            it = cap.stats.erase(it);
        } else {
            ++it;
        }
    }
    return cap;
}

void
expectIdentical(const RunCapture &ff, const RunCapture &tick,
                RunaheadConfig rc)
{
    const char *name = runaheadConfigName(rc);
    ASSERT_EQ(ff.cycles, tick.cycles) << name;

    ASSERT_EQ(ff.trace.size(), tick.trace.size()) << name;
    for (std::size_t i = 0; i < ff.trace.size(); ++i) {
        ASSERT_EQ(ff.trace[i].pc, tick.trace[i].pc)
            << name << " uop " << i;
        ASSERT_EQ(ff.trace[i].result, tick.trace[i].result)
            << name << " uop " << i << " pc " << ff.trace[i].pc;
        ASSERT_EQ(ff.trace[i].addr, tick.trace[i].addr)
            << name << " uop " << i;
        ASSERT_EQ(ff.trace[i].taken, tick.trace[i].taken)
            << name << " uop " << i;
    }

    ASSERT_EQ(ff.stats.size(), tick.stats.size()) << name;
    for (const auto &[key, value] : tick.stats) {
        const auto it = ff.stats.find(key);
        ASSERT_TRUE(it != ff.stats.end()) << name << " missing " << key;
        EXPECT_EQ(it->second, value) << name << " stat " << key;
    }
}

TEST(FastForward, AllConfigsMatchTickByTick)
{
    std::uint64_t total_skipped = 0;
    for (const RunaheadConfig rc : kAllConfigs) {
        const RunCapture ff = runOne(rc, true, false);
        const RunCapture tick = runOne(rc, false, false);
        EXPECT_EQ(tick.ffWindows, 0u) << runaheadConfigName(rc);
        EXPECT_EQ(tick.ffSkipped, 0u) << runaheadConfigName(rc);
        expectIdentical(ff, tick, rc);
        total_skipped += ff.ffSkipped;
    }
    // The engine must actually have engaged somewhere (mcf is
    // memory-bound; the baseline config alone skips the majority of
    // its cycles), or this whole test proves nothing.
    EXPECT_GT(total_skipped, 0u);
}

TEST(FastForward, AllConfigsMatchTickByTickUnderFaults)
{
    std::uint64_t total_skipped = 0;
    for (const RunaheadConfig rc : kAllConfigs) {
        const RunCapture ff = runOne(rc, true, true);
        const RunCapture tick = runOne(rc, false, true);
        expectIdentical(ff, tick, rc);
        total_skipped += ff.ffSkipped;
    }
    EXPECT_GT(total_skipped, 0u);
}

} // namespace
} // namespace rab
