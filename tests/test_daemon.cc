/**
 * @file
 * End-to-end tests for daemon-mode rabsweep (sweep/serve): an
 * in-process Daemon on a private unix socket, exercised through real
 * FrameConn clients — the same code path `rabsweep --serve` runs.
 *
 * Covered here: submit/point/done streaming, cross-job store
 * deduplication, ping, every shed/error frame (bad-spec, queue-full,
 * too-large, protocol, idle-timeout), graceful drain delivering an
 * "interrupted" partial manifest, and startup failure reporting.
 * The TSan CI job runs this suite to certify the locking design.
 */

#include <gtest/gtest.h>

#ifdef __unix__

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "stats/json.hh"
#include "sweep/serve/daemon.hh"
#include "sweep/serve/protocol.hh"
#include "sweep/store/result_store.hh"

namespace fs = std::filesystem;

namespace rab
{
namespace
{

/** Short, unique socket path (sun_path is ~108 bytes — stay short). */
std::string
socketPath(const std::string &name)
{
    return "/tmp/rabd-" + std::to_string(::getpid()) + "-" + name
        + ".sock";
}

std::string
storeRoot(const std::string &name)
{
    const fs::path root =
        fs::path(::testing::TempDir()) / ("rabdaemon-" + name);
    fs::remove_all(root);
    return root.string();
}

DaemonConfig
testConfig(const std::string &name)
{
    DaemonConfig config;
    config.socketPath = socketPath(name);
    config.threads = 2;
    config.ioTimeoutMs = 2'000;
    config.idleTimeoutMs = 60'000;
    config.retryBackoffMs = 0;
    return config;
}

Json
submitFrame(const std::vector<std::string> &workloads,
            const std::vector<std::string> &configs,
            std::uint64_t instructions, std::uint64_t warmup)
{
    Json campaign = Json::object();
    campaign["name"] = "daemon-test";
    Json w = Json::array();
    for (const std::string &name : workloads)
        w.push(name);
    campaign["workloads"] = std::move(w);
    Json c = Json::array();
    for (const std::string &name : configs)
        c.push(name);
    campaign["configs"] = std::move(c);
    campaign["instructions"] = instructions;
    campaign["warmup"] = warmup;

    Json frame = Json::object();
    frame["type"] = "submit";
    frame["campaign"] = std::move(campaign);
    return frame;
}

/** A connected test client; closes its fd on destruction. */
struct TestClient
{
    explicit TestClient(const std::string &path)
        : fd(connectUnixSocket(path)), conn(fd)
    {
    }

    ~TestClient()
    {
        if (fd >= 0)
            ::close(fd);
    }

    bool ok() const { return fd >= 0; }

    /** Read + parse one frame; false on timeout/close/parse error. */
    bool
    read(Json &out, int timeout_ms = 30'000)
    {
        std::string payload;
        if (conn.readFrame(payload, timeout_ms) != FrameStatus::kOk)
            return false;
        try {
            out = Json::parse(payload);
        } catch (const JsonError &) {
            return false;
        }
        return true;
    }

    bool
    send(const Json &frame)
    {
        return conn.writeJson(frame, 2'000);
    }

    int fd;
    FrameConn conn;
};

TEST(Daemon, SubmitStreamsPointsAndCompletes)
{
    DaemonConfig config = testConfig("submit");
    config.storeDir = storeRoot("submit");
    Daemon daemon(config);
    ASSERT_TRUE(daemon.start()) << daemon.error();

    std::string first_manifest;
    {
        TestClient client(config.socketPath);
        ASSERT_TRUE(client.ok());
        ASSERT_TRUE(client.send(
            submitFrame({"mcf"}, {"baseline", "hybrid"}, 2'000, 500)));

        Json accepted;
        ASSERT_TRUE(client.read(accepted));
        EXPECT_EQ(accepted.at("type").asString(), "accepted");
        EXPECT_EQ(accepted.at("points").asU64(), 2u);

        // Two incremental point frames, then the done frame.
        std::size_t points = 0;
        Json frame;
        while (client.read(frame)
               && frame.at("type").asString() == "point") {
            ++points;
            EXPECT_TRUE(frame.at("ok").asBool())
                << frame.at("error").asString();
            EXPECT_FALSE(frame.at("cached").asBool());
        }
        EXPECT_EQ(points, 2u);
        ASSERT_EQ(frame.at("type").asString(), "done");
        EXPECT_EQ(frame.at("store_hits").asU64(), 0u);
        const Json &manifest = frame.at("manifest");
        EXPECT_EQ(
            manifest.at("campaign").at("points").asU64(), 2u);
        EXPECT_EQ(
            manifest.at("campaign").at("failed_points").asU64(), 0u);
        EXPECT_FALSE(
            manifest.at("campaign").at("interrupted").asBool());
        first_manifest = manifest.dump();
    }

    // A second client submitting the same grid is served entirely
    // from the store — zero new simulation, identical manifest.
    {
        TestClient client(config.socketPath);
        ASSERT_TRUE(client.ok());
        ASSERT_TRUE(client.send(
            submitFrame({"mcf"}, {"baseline", "hybrid"}, 2'000, 500)));

        Json frame;
        ASSERT_TRUE(client.read(frame)); // accepted
        std::size_t cached = 0;
        while (client.read(frame)
               && frame.at("type").asString() == "point")
            cached += frame.at("cached").asBool() ? 1 : 0;
        ASSERT_EQ(frame.at("type").asString(), "done");
        EXPECT_EQ(cached, 2u);
        EXPECT_EQ(frame.at("store_hits").asU64(), 2u);
        EXPECT_EQ(frame.at("manifest").dump(), first_manifest);
    }

    daemon.drainAndWait();
    EXPECT_EQ(daemon.stats().jobsCompleted.load(), 2u);
    EXPECT_EQ(daemon.stats().pointsSimulated.load(), 2u);
    EXPECT_EQ(daemon.stats().pointsCached.load(), 2u);
    EXPECT_EQ(daemon.stats().jobsInterrupted.load(), 0u);
}

TEST(Daemon, PingPong)
{
    const DaemonConfig config = testConfig("ping");
    Daemon daemon(config);
    ASSERT_TRUE(daemon.start()) << daemon.error();

    TestClient client(config.socketPath);
    ASSERT_TRUE(client.ok());
    Json ping = Json::object();
    ping["type"] = "ping";
    ASSERT_TRUE(client.send(ping));
    Json pong;
    ASSERT_TRUE(client.read(pong));
    EXPECT_EQ(pong.at("type").asString(), "pong");
    daemon.drainAndWait();
}

TEST(Daemon, BadSpecIsRejectedWithAReason)
{
    const DaemonConfig config = testConfig("badspec");
    Daemon daemon(config);
    ASSERT_TRUE(daemon.start()) << daemon.error();

    TestClient client(config.socketPath);
    ASSERT_TRUE(client.ok());

    // Unknown workload.
    ASSERT_TRUE(client.send(
        submitFrame({"no-such-workload"}, {"baseline"}, 2'000, 500)));
    Json frame;
    ASSERT_TRUE(client.read(frame));
    EXPECT_EQ(frame.at("type").asString(), "error");
    EXPECT_EQ(frame.at("code").asString(), "bad-spec");
    EXPECT_NE(frame.at("message").asString().find("no-such-workload"),
              std::string::npos);

    // Unknown config label.
    ASSERT_TRUE(client.send(
        submitFrame({"mcf"}, {"warp-drive"}, 2'000, 500)));
    ASSERT_TRUE(client.read(frame));
    EXPECT_EQ(frame.at("code").asString(), "bad-spec");

    // Submit with no campaign member at all.
    Json bare = Json::object();
    bare["type"] = "submit";
    ASSERT_TRUE(client.send(bare));
    ASSERT_TRUE(client.read(frame));
    EXPECT_EQ(frame.at("code").asString(), "bad-spec");

    daemon.drainAndWait();
    EXPECT_EQ(daemon.stats().badSpecs.load(), 3u);
    EXPECT_EQ(daemon.stats().jobsAccepted.load(), 0u);
}

TEST(Daemon, AdmissionControlShedsWhenFull)
{
    // maxActiveJobs = 0 makes every submission shed deterministically
    // (no race against job completion).
    DaemonConfig config = testConfig("shed");
    config.maxActiveJobs = 0;
    Daemon daemon(config);
    ASSERT_TRUE(daemon.start()) << daemon.error();

    TestClient client(config.socketPath);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(
        client.send(submitFrame({"mcf"}, {"baseline"}, 2'000, 500)));
    Json frame;
    ASSERT_TRUE(client.read(frame));
    EXPECT_EQ(frame.at("type").asString(), "error");
    EXPECT_EQ(frame.at("code").asString(), "queue-full");
    // The shed frame is structured: it reports the limit it hit so a
    // client can back off intelligently.
    EXPECT_EQ(frame.at("active").asU64(), 0u);
    EXPECT_EQ(frame.at("limit").asU64(), 0u);

    daemon.drainAndWait();
    EXPECT_EQ(daemon.stats().jobsShed.load(), 1u);
}

TEST(Daemon, OversizedGridIsShed)
{
    DaemonConfig config = testConfig("toolarge");
    config.maxPointsPerJob = 1;
    Daemon daemon(config);
    ASSERT_TRUE(daemon.start()) << daemon.error();

    TestClient client(config.socketPath);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.send(
        submitFrame({"mcf"}, {"baseline", "hybrid"}, 2'000, 500)));
    Json frame;
    ASSERT_TRUE(client.read(frame));
    EXPECT_EQ(frame.at("type").asString(), "error");
    EXPECT_EQ(frame.at("code").asString(), "too-large");
    daemon.drainAndWait();
}

TEST(Daemon, MalformedFramesGetProtocolErrors)
{
    const DaemonConfig config = testConfig("protocol");
    Daemon daemon(config);
    ASSERT_TRUE(daemon.start()) << daemon.error();

    TestClient client(config.socketPath);
    ASSERT_TRUE(client.ok());

    // Not JSON at all.
    ASSERT_TRUE(client.conn.writeFrame("this is not json", 2'000));
    Json frame;
    ASSERT_TRUE(client.read(frame));
    EXPECT_EQ(frame.at("type").asString(), "error");
    EXPECT_EQ(frame.at("code").asString(), "protocol");

    // Valid JSON, unknown type.
    Json bogus = Json::object();
    bogus["type"] = "warp";
    ASSERT_TRUE(client.send(bogus));
    ASSERT_TRUE(client.read(frame));
    EXPECT_EQ(frame.at("code").asString(), "protocol");

    daemon.drainAndWait();
}

TEST(Daemon, DrainDeliversPartialManifest)
{
    // One worker, a six-point grid with a real instruction budget:
    // the drain request lands while most of the grid is still queued,
    // so the client must receive an "interrupted" frame carrying a
    // partial manifest (the daemon-side analogue of Ctrl-C).
    DaemonConfig config = testConfig("drain");
    config.threads = 1;
    Daemon daemon(config);
    ASSERT_TRUE(daemon.start()) << daemon.error();

    TestClient client(config.socketPath);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.send(submitFrame(
        {"mcf", "libq"}, {"baseline", "hybrid", "hybrid+pf"},
        200'000, 1'000)));
    Json frame;
    ASSERT_TRUE(client.read(frame));
    ASSERT_EQ(frame.at("type").asString(), "accepted");

    daemon.drainAndWait();

    // Drain the socket: zero or more point frames, then interrupted.
    while (client.read(frame)
           && frame.at("type").asString() == "point") {
    }
    ASSERT_EQ(frame.at("type").asString(), "interrupted");
    const Json &manifest = frame.at("manifest");
    EXPECT_TRUE(manifest.at("campaign").at("interrupted").asBool());
    EXPECT_GT(manifest.at("campaign").at("skipped_points").asU64(),
              0u);
    EXPECT_EQ(manifest.at("campaign").at("points").asU64(), 6u);
    EXPECT_EQ(daemon.stats().jobsInterrupted.load(), 1u);
    EXPECT_EQ(daemon.stats().jobsCompleted.load(), 0u);
}

TEST(Daemon, IdleClientIsReaped)
{
    DaemonConfig config = testConfig("idle");
    config.idleTimeoutMs = 100;
    Daemon daemon(config);
    ASSERT_TRUE(daemon.start()) << daemon.error();

    TestClient client(config.socketPath);
    ASSERT_TRUE(client.ok());
    // Send nothing: the daemon must say goodbye and hang up rather
    // than hold the connection slot forever.
    Json frame;
    ASSERT_TRUE(client.read(frame, 5'000));
    EXPECT_EQ(frame.at("type").asString(), "error");
    EXPECT_EQ(frame.at("code").asString(), "idle-timeout");
    std::string rest;
    EXPECT_EQ(client.conn.readFrame(rest, 5'000),
              FrameStatus::kClosed);
    daemon.drainAndWait();
}

TEST(Daemon, StartFailureIsReportedNotFatal)
{
    DaemonConfig config = testConfig("badpath");
    config.socketPath = "/definitely/not/a/dir/rabd.sock";
    Daemon daemon(config);
    EXPECT_FALSE(daemon.start());
    EXPECT_FALSE(daemon.error().empty());
    daemon.drainAndWait(); // Must be safe after a failed start.
}

} // namespace
} // namespace rab

#else // !__unix__

TEST(Daemon, UnsupportedPlatform)
{
    GTEST_SKIP() << "daemon mode requires unix sockets";
}

#endif
