/**
 * @file
 * Unit tests: fetch/decode front-end.
 */

#include <gtest/gtest.h>

#include "frontend/frontend.hh"
#include "isa/program.hh"
#include "memory/memory_system.hh"

namespace rab
{
namespace
{

Program
loopProgram()
{
    ProgramBuilder b("loop");
    auto top = b.label();
    b.addi(1, 1, 1);
    b.addi(2, 2, 1);
    b.addi(3, 3, 1);
    b.jump(top);
    return b.build();
}

struct FrontendFixture : ::testing::Test
{
    FrontendFixture()
        : program(loopProgram()), mem(MemSysConfig{}),
          bp(BranchPredictorConfig{}),
          fe(FrontendConfig{}, &program, &bp, &mem)
    {
    }

    /** Warm the I-cache so fetch is not stalled by cold misses. */
    void
    warm()
    {
        Cycle cycle = 0;
        while (fe.fetchedUops.value() < 8 && cycle < 2000)
            fe.tick(cycle++);
        fe.redirect(0, cycle);
        warmCycle = cycle;
    }

    Program program;
    MemorySystem mem;
    BranchPredictor bp;
    Frontend fe;
    Cycle warmCycle = 0;
};

TEST_F(FrontendFixture, FetchStopsAtTakenControl)
{
    warm();
    const auto fetched_before = fe.fetchedUops.value();
    fe.tick(warmCycle);
    // The program is 4 uops with a taken jump at pc 3: a single cycle
    // fetches at most up to (and including) the jump.
    EXPECT_LE(fe.fetchedUops.value() - fetched_before, 4u);
    // Decode delay: nothing ready the same cycle.
    EXPECT_FALSE(fe.hasReady(warmCycle));
    const Cycle ready = warmCycle + 1 + FrontendConfig{}.decodeDepth;
    EXPECT_TRUE(fe.hasReady(ready));
}

TEST_F(FrontendFixture, PopsInProgramOrder)
{
    warm();
    for (Cycle c = warmCycle; c < warmCycle + 10; ++c)
        fe.tick(c);
    const Cycle now = warmCycle + 20;
    ASSERT_TRUE(fe.hasReady(now));
    EXPECT_EQ(fe.peek().pc, 0u);
    EXPECT_EQ(fe.pop().pc, 0u);
    EXPECT_EQ(fe.pop().pc, 1u);
    EXPECT_EQ(fe.pop().pc, 2u);
    EXPECT_EQ(fe.pop().pc, 3u); // the jump
    EXPECT_EQ(fe.pop().pc, 0u); // wrapped to loop top
}

TEST_F(FrontendFixture, RedirectClearsQueue)
{
    warm();
    for (Cycle c = warmCycle; c < warmCycle + 5; ++c)
        fe.tick(c);
    fe.redirect(2, warmCycle + 10);
    EXPECT_FALSE(fe.hasReady(warmCycle + 9));
    for (Cycle c = warmCycle + 10; c < warmCycle + 16; ++c)
        fe.tick(c);
    ASSERT_TRUE(fe.hasReady(warmCycle + 16));
    EXPECT_EQ(fe.peek().pc, 2u);
}

TEST_F(FrontendFixture, GatingStopsFetchAndCounts)
{
    warm();
    fe.setGated(true);
    const auto fetched = fe.fetchedUops.value();
    fe.tick(warmCycle);
    fe.tick(warmCycle + 1);
    EXPECT_EQ(fe.fetchedUops.value(), fetched);
    EXPECT_EQ(fe.gatedCycles.value(), 2u);
    fe.setGated(false);
    fe.tick(warmCycle + 2);
    EXPECT_GT(fe.fetchedUops.value(), fetched);
}

TEST_F(FrontendFixture, QueueCapacityBoundsFetch)
{
    warm();
    for (Cycle c = warmCycle; c < warmCycle + 200; ++c)
        fe.tick(c); // never popped
    std::size_t drained = 0;
    while (fe.hasReady(warmCycle + 400)) {
        fe.pop();
        ++drained;
    }
    EXPECT_LE(drained,
              static_cast<std::size_t>(FrontendConfig{}.fetchQueueEntries));
    EXPECT_GT(fe.idleCycles.value(), 0u); // queue-full cycles were idle
}

TEST(Frontend, EmptyProgramFatal)
{
    Program empty("empty");
    MemorySystem mem{MemSysConfig{}};
    BranchPredictor bp{BranchPredictorConfig{}};
    EXPECT_DEATH(Frontend(FrontendConfig{}, &empty, &bp, &mem),
                 "empty program");
}

} // namespace
} // namespace rab
