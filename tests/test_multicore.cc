/**
 * @file
 * Multi-core certification suite for MultiSimulation.
 *
 * The load-bearing guarantee is N == 1 transparency: a MultiSimulation
 * with numCores == 1 must be indistinguishable from the single-core
 * Simulation it generalises — byte-identical commit stream, identical
 * cycle count, identical full statistics payload — for all six
 * runahead configurations, clean and under fault injection. Anything
 * less would mean the multi-core driver changed single-core behaviour,
 * which the sweep baselines (and every pinned result in the store)
 * depend on not happening.
 *
 * The second differential attacks the sharing layer from the other
 * side: with SimConfig::isolateMemory set, an N-core run must commit
 * exactly what N independent solo runs commit — randomized over
 * workload mixes and per-core policies — because isolated cores share
 * nothing and lockstep ticking must not leak state between them.
 *
 * Finally, shared-mode smoke: a heterogeneous mix on a shared
 * LLC/MSHR/DRAM must run to completion under the full invariant
 * checker (which audits L1-contained-in-LLC every 4096 cycles) and
 * produce the per-core and chip-wide contention accounting the
 * interference experiment reads.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "core/multi_sim.hh"
#include "core/simulation.hh"
#include "reference_interpreter.hh"
#include "workloads/suite.hh"

namespace rab
{
namespace
{

using test::RefCommit;

constexpr RunaheadConfig kAllConfigs[] = {
    RunaheadConfig::kBaseline,         RunaheadConfig::kRunahead,
    RunaheadConfig::kRunaheadEnhanced, RunaheadConfig::kRunaheadBuffer,
    RunaheadConfig::kRunaheadBufferCC, RunaheadConfig::kHybrid,
};

/** Everything a differential pair compares. */
struct RunCapture
{
    std::vector<RefCommit> trace;
    std::map<std::string, double> stats;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
};

SimConfig
makeTestConfig(RunaheadConfig rc, bool faulted)
{
    SimConfig config = makeConfig(rc, /*prefetch=*/false);
    config.warmupInstructions = 2'000;
    config.instructions = 12'000;
    config.checkLevel = CheckLevel::kFull;
    if (faulted) {
        // Speculative-only faults with the checker routing violations
        // to the degradation ladder: exercises watchdog recovery and
        // the degrade path inside the lockstep driver.
        config.checkPolicy = CheckPolicy::kDegrade;
        config.fault.enabled = true;
        config.fault.seed = 7;
        config.fault.chainCacheRate = 0.1;
        config.fault.bufferUopRate = 0.1;
    }
    config.finalize();
    return config;
}

RefCommit
captureCommit(const DynUop &uop)
{
    RefCommit c;
    c.pc = uop.pc;
    c.result = uop.sop.hasDest() || uop.isStore() ? uop.result : 0;
    c.addr = uop.sop.isMem() ? uop.effAddr : kNoAddr;
    c.taken = uop.isControl() && uop.actualTaken;
    return c;
}

/** Single-core reference: the plain Simulation everyone trusts. */
RunCapture
runSolo(const SimConfig &config, const std::string &workload)
{
    Simulation sim(config, buildSuiteWorkload(workload));
    RunCapture cap;
    sim.core().setCommitHook([&](const DynUop &uop) {
        cap.trace.push_back(captureCommit(uop));
    });
    const SimResult result = sim.run();
    cap.cycles = result.cycles;
    cap.instructions = result.instructions;
    cap.stats = sim.core().stats().collect();
    const std::map<std::string, double> mem =
        sim.memory().stats().collect();
    cap.stats.insert(mem.begin(), mem.end());
    return cap;
}

/** The same run through the N-core driver with numCores == 1. */
RunCapture
runMono(const SimConfig &config, const std::string &workload)
{
    SimConfig mono = config;
    mono.numCores = 1;
    MultiSimulation sim(mono, {buildSuiteWorkload(workload)});
    RunCapture cap;
    sim.core(0).setCommitHook([&](const DynUop &uop) {
        cap.trace.push_back(captureCommit(uop));
    });
    const MultiSimResult result = sim.run();
    cap.cycles = result.cycles;
    cap.instructions = result.instructions;
    cap.stats = result.stats;
    return cap;
}

void
expectIdentical(const RunCapture &a, const RunCapture &b,
                const std::string &label)
{
    ASSERT_EQ(a.cycles, b.cycles) << label;
    ASSERT_EQ(a.instructions, b.instructions) << label;

    ASSERT_EQ(a.trace.size(), b.trace.size()) << label;
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
        ASSERT_EQ(a.trace[i].pc, b.trace[i].pc)
            << label << " uop " << i;
        ASSERT_EQ(a.trace[i].result, b.trace[i].result)
            << label << " uop " << i << " pc " << a.trace[i].pc;
        ASSERT_EQ(a.trace[i].addr, b.trace[i].addr)
            << label << " uop " << i;
        ASSERT_EQ(a.trace[i].taken, b.trace[i].taken)
            << label << " uop " << i;
    }
}

void
expectIdenticalStats(const RunCapture &a, const RunCapture &b,
                     const std::string &label)
{
    ASSERT_EQ(a.stats.size(), b.stats.size()) << label;
    for (const auto &[key, value] : b.stats) {
        const auto it = a.stats.find(key);
        ASSERT_TRUE(it != a.stats.end()) << label << " missing " << key;
        EXPECT_EQ(it->second, value) << label << " stat " << key;
    }
}

/** numCores == 1 is byte-identical to Simulation: commit stream,
 *  cycle count and the full stat payload, for all six configs. */
TEST(MultiCore, MonoCoreMatchesSimulationByteForByte)
{
    for (const RunaheadConfig rc : kAllConfigs) {
        const SimConfig config = makeTestConfig(rc, false);
        const RunCapture solo = runSolo(config, "mcf");
        const RunCapture mono = runMono(config, "mcf");
        const std::string label = runaheadConfigName(rc);
        expectIdentical(solo, mono, label);
        expectIdenticalStats(solo, mono, label);
    }
}

/** The same transparency must hold with fault injection active —
 *  watchdog recoveries, degradation steps and all. */
TEST(MultiCore, MonoCoreMatchesSimulationUnderFaults)
{
    for (const RunaheadConfig rc : kAllConfigs) {
        const SimConfig config = makeTestConfig(rc, true);
        const RunCapture solo = runSolo(config, "mcf");
        const RunCapture mono = runMono(config, "mcf");
        const std::string label =
            std::string(runaheadConfigName(rc)) + "+faults";
        expectIdentical(solo, mono, label);
        expectIdenticalStats(solo, mono, label);
    }
}

/** Randomized isolation differential: N cores with isolateMemory set
 *  (private memory per core, no shared state at all) must commit
 *  exactly what N independent solo runs commit. Any cross-core leak
 *  through the lockstep driver — tick ordering, fast-forward horizon
 *  coupling, stat aliasing — breaks a stream. */
TEST(MultiCore, IsolatedCoresMatchSoloRuns)
{
    const std::vector<std::string> pool = {"mcf", "libq", "omnetpp",
                                           "h264", "lbm"};
    Rng rng(0xC0DE5EED);
    for (int round = 0; round < 3; ++round) {
        const int cores = 2 + static_cast<int>(rng.range(3)); // 2..4
        std::vector<std::string> workloads;
        std::vector<RunaheadConfig> policies;
        for (int i = 0; i < cores; ++i) {
            workloads.push_back(
                pool[static_cast<std::size_t>(rng.range(
                    static_cast<std::uint32_t>(pool.size())))]);
            policies.push_back(kAllConfigs[rng.range(6)]);
        }

        SimConfig config = makeTestConfig(policies[0], false);
        config.numCores = cores;
        config.corePolicies = policies;
        config.isolateMemory = true;

        MultiSimulation multi(config, [&] {
            std::vector<Program> programs;
            for (const std::string &w : workloads)
                programs.push_back(buildSuiteWorkload(w));
            return programs;
        }());
        std::vector<std::vector<RefCommit>> traces(
            static_cast<std::size_t>(cores));
        for (int i = 0; i < cores; ++i) {
            auto &trace = traces[static_cast<std::size_t>(i)];
            multi.core(i).setCommitHook([&trace](const DynUop &uop) {
                trace.push_back(captureCommit(uop));
            });
        }
        const MultiSimResult result = multi.run();
        ASSERT_EQ(result.cores.size(),
                  static_cast<std::size_t>(cores));

        for (int i = 0; i < cores; ++i) {
            SimConfig solo_config = makeTestConfig(
                policies[static_cast<std::size_t>(i)], false);
            const RunCapture solo = runSolo(
                solo_config, workloads[static_cast<std::size_t>(i)]);
            const std::string label =
                "round " + std::to_string(round) + " core "
                + std::to_string(i) + " ("
                + workloads[static_cast<std::size_t>(i)] + "/"
                + runaheadConfigName(
                    policies[static_cast<std::size_t>(i)])
                + ")";
            // A core that crosses its budget early keeps running (in
            // shared mode it must keep generating contention; the
            // isolated driver does the same for uniformity), so its
            // stream extends past the solo run's end: the solo trace
            // must be an exact prefix of the multi trace.
            const auto &trace = traces[static_cast<std::size_t>(i)];
            ASSERT_GE(trace.size(), solo.trace.size()) << label;
            for (std::size_t u = 0; u < solo.trace.size(); ++u) {
                ASSERT_EQ(solo.trace[u].pc, trace[u].pc)
                    << label << " uop " << u;
                ASSERT_EQ(solo.trace[u].result, trace[u].result)
                    << label << " uop " << u;
                ASSERT_EQ(solo.trace[u].addr, trace[u].addr)
                    << label << " uop " << u;
            }
            // Isolated cores still report per-core results. The count
            // is snapshotted at the core's own budget crossing, which
            // can land up to a commit-width short of or past the solo
            // run's crossing (the lockstep warmup lets early finishers
            // run on, shifting the measured window by a few uops).
            const std::uint64_t got =
                result.cores[static_cast<std::size_t>(i)]
                    .instructions;
            EXPECT_GE(got, config.instructions) << label;
            EXPECT_LE(got,
                      config.instructions
                          + static_cast<std::uint64_t>(
                              config.core.commitWidth))
                << label;
        }
    }
}

/** Shared-mode smoke: a heterogeneous 4-core mix on one LLC/MSHR/DRAM
 *  runs to completion under the full checker and reports per-core +
 *  chip-wide contention stats. */
TEST(MultiCore, SharedMixRunsWithContentionAccounting)
{
    SimConfig config = makeTestConfig(RunaheadConfig::kHybrid, false);
    config.numCores = 4;
    config.finalize();

    const MultiSimResult result =
        simulateMix(config, {"mcf", "libq", "omnetpp", "h264"});

    ASSERT_EQ(result.cores.size(), 4u);
    std::uint64_t sum = 0;
    for (const SimResult &r : result.cores) {
        EXPECT_GE(r.instructions, config.instructions);
        sum += r.instructions;
    }
    EXPECT_EQ(result.instructions, sum);
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.throughputIpc, 0.0);

    // The interference experiment reads these exact keys.
    EXPECT_TRUE(result.stats.count("shared.cross_core_evictions"));
    for (int i = 0; i < 4; ++i) {
        const std::string p = "core" + std::to_string(i) + ".mem.";
        EXPECT_TRUE(result.stats.count(p + "bank_conflicts")) << i;
        EXPECT_TRUE(result.stats.count(p + "bank_conflict_wait_cycles"))
            << i;
        EXPECT_TRUE(result.stats.count(p + "llc_evicted_by_others"))
            << i;
        EXPECT_TRUE(result.stats.count(p + "shared_mshr_peers_held"))
            << i;
        EXPECT_TRUE(result.stats.count(p + "queue_rejects_contended"))
            << i;
        EXPECT_TRUE(result.stats.count(
            "shared.core" + std::to_string(i) + ".mshr_peak"))
            << i;
        // Per-core pipeline stats survive the core<i> re-rooting.
        EXPECT_TRUE(result.stats.count(
            "core" + std::to_string(i) + ".core.committed_uops"))
            << i;
    }

    // Four cores hammering one DRAM channel must actually contend:
    // at least one bank conflict somewhere, or the accounting is dead.
    double conflicts = 0;
    for (int i = 0; i < 4; ++i)
        conflicts += result.stats.at(
            "core" + std::to_string(i) + ".mem.bank_conflicts");
    EXPECT_GT(conflicts, 0.0);
}

/** Chip-level energy accounting: a shared-memory mix reports a chip
 *  EnergyBreakdown in which the shared LLC/DRAM static power is
 *  charged once for the chip, not once per core — so the chip total
 *  sits strictly between the dynamic-only sum and the naive sum of
 *  per-core totals. The N == 1 path stays untouched: no shared.energy
 *  keys appear in a mono payload (byte-identity with Simulation). */
TEST(MultiCore, SharedMixChargesStaticPowerOnce)
{
    SimConfig config = makeTestConfig(RunaheadConfig::kHybrid, false);
    config.numCores = 2;
    config.finalize();

    const MultiSimResult result = simulateMix(config, {"mcf", "libq"});
    ASSERT_EQ(result.cores.size(), 2u);

    double percore_sum = 0;
    for (const SimResult &cr : result.cores) {
        EXPECT_GT(cr.energy.totalJ, 0.0);
        percore_sum += cr.energy.totalJ;
    }
    EXPECT_GT(result.energy.totalJ, 0.0);
    // Both cores ran the whole chip window, so each per-core breakdown
    // charged the shared static power over (almost) the full window;
    // the chip view backs out all but one of those charges.
    EXPECT_LT(result.energy.totalJ, percore_sum);
    const double shared_static_w = config.energy.llcLeakageW
        + config.energy.dramStaticW;
    const double expected = percore_sum
        + shared_static_w
            * (result.energy.seconds - result.cores[0].energy.seconds
               - result.cores[1].energy.seconds);
    EXPECT_NEAR(result.energy.totalJ, expected,
                1e-12 * percore_sum);

    EXPECT_EQ(result.stats.at("shared.energy.total_j"),
              result.energy.totalJ);
    EXPECT_EQ(result.stats.at("shared.energy.seconds"),
              result.energy.seconds);

    // Mono payloads must not grow the key: re-run N == 1 and prove
    // the shared.energy subtree is absent.
    SimConfig mono = makeTestConfig(RunaheadConfig::kHybrid, false);
    const RunCapture cap = runMono(mono, "mcf");
    for (const auto &[key, value] : cap.stats)
        EXPECT_EQ(key.rfind("shared.", 0), std::string::npos) << key;
}

/** Heterogeneous per-core policies: each core runs its own runahead
 *  configuration, and the per-core results reflect it (runahead cores
 *  enter runahead intervals; the baseline core never does). */
TEST(MultiCore, PerCorePoliciesApplyIndependently)
{
    SimConfig config = makeTestConfig(RunaheadConfig::kHybrid, false);
    config.numCores = 2;
    config.corePolicies = {RunaheadConfig::kHybrid,
                           RunaheadConfig::kBaseline};
    config.finalize();

    const MultiSimResult result = simulateMix(config, {"mcf", "mcf"});

    ASSERT_EQ(result.cores.size(), 2u);
    EXPECT_EQ(result.cores[0].config, RunaheadConfig::kHybrid);
    EXPECT_EQ(result.cores[1].config, RunaheadConfig::kBaseline);
    EXPECT_GT(result.cores[0].runaheadIntervals, 0u);
    EXPECT_EQ(result.cores[1].runaheadIntervals, 0u);
}

} // namespace
} // namespace rab
