/**
 * @file
 * ROB index certification.
 *
 * Two layers:
 *
 * 1. A randomized structural differential drives a Rob through long
 *    sequences of push / popHead / popTail / clear — including
 *    squash-to-checkpoint bursts, the pattern branch recovery and
 *    runahead exit produce — and after every mutation compares the
 *    incremental PC and producer indexes against the retained
 *    linear-scan reference forms for every interesting (pc, seq) and
 *    (reg, seq) query.
 *
 * 2. A whole-simulation differential (the test_fastforward pattern):
 *    for all six runahead configurations, a run with the indexes
 *    enabled must produce a byte-identical commit stream, identical
 *    cycle count, and an identical statistics payload compared to a
 *    run routed through the scan-based reference paths
 *    (SimConfig::referenceScans) — clean, and again under speculative
 *    fault injection. Runs execute with the checker at full strength,
 *    whose checkRobIndexes() scan independently cross-validates the
 *    index structures every kFullScanPeriod cycles.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "backend/rob.hh"
#include "common/rng.hh"
#include "core/simulation.hh"
#include "reference_interpreter.hh"
#include "workloads/suite.hh"

namespace rab
{

// DynUop's field order is deliberate (see dyn_uop.hh): everything the
// per-event pipeline touch reads lives in the first cache line. Pin
// the boundary so an innocent-looking field addition does not silently
// push the status bits onto a second line.
static_assert(offsetof(DynUop, readyAt) == 64,
              "DynUop hot fields must fill exactly the first 64 bytes");
static_assert(sizeof(DynUop) <= 160,
              "DynUop grew past 160 bytes; re-check the ROB footprint");

namespace
{

using test::RefCommit;

// --------------------------------------------------------------------
// Layer 1: randomized structural differential
// --------------------------------------------------------------------

DynUop
makeUop(SeqNum seq, Pc pc, ArchReg dest, ArchReg src1, ArchReg src2)
{
    DynUop u;
    u.seq = seq;
    u.pc = pc;
    u.sop.op = Opcode::kIntAlu;
    u.sop.dest = dest;
    u.sop.src1 = src1;
    u.sop.src2 = src2;
    return u;
}

/** Compare the indexed and scan forms across a grid of queries that
 *  covers present/absent PCs, every register, and seq bounds below,
 *  inside and above the live window. */
void
expectFormsAgree(const Rob &rob, SeqNum max_seq, std::uint64_t step)
{
    const SeqNum probes[] = {0, max_seq / 2, max_seq, max_seq + 1};
    for (Pc pc = 0; pc < 12; ++pc) {
        for (const SeqNum after : probes) {
            ASSERT_EQ(rob.findOldestByPcIndexed(pc, after),
                      rob.findOldestByPcScan(pc, after))
                << "pc " << pc << " after " << after << " step " << step;
        }
    }
    for (ArchReg reg = 0; reg < 8; ++reg) {
        for (const SeqNum before : probes) {
            ASSERT_EQ(rob.findProducerIndexed(reg, before),
                      rob.findProducerScan(reg, before))
                << "reg " << reg << " before " << before << " step "
                << step;
        }
    }
}

TEST(RobIndex, RandomizedInsertRetireSquashDifferential)
{
    Rng rng(0x5eed);
    Rob rob(32);
    SeqNum next_seq = 1;

    const auto push_random = [&] {
        // Small PC / register alphabets force heavy key collisions, the
        // regime where a broken list would first diverge from a scan.
        const Pc pc = rng.next() % 10;
        const ArchReg dest =
            rng.next() % 4 == 0 ? kNoArchReg : ArchReg(rng.next() % 8);
        const ArchReg src1 = ArchReg(rng.next() % 8);
        const ArchReg src2 =
            rng.next() % 3 == 0 ? kNoArchReg : ArchReg(rng.next() % 8);
        rob.push(makeUop(next_seq++, pc, dest, src1, src2));
    };

    for (std::uint64_t step = 0; step < 6000; ++step) {
        const std::uint64_t roll = rng.next() % 100;
        if (roll < 45) {
            if (!rob.full())
                push_random();
        } else if (roll < 70) {
            if (!rob.empty())
                rob.popHead();
        } else if (roll < 85) {
            if (!rob.empty())
                rob.popTail();
        } else if (roll < 97) {
            // Squash to a checkpoint: pop the tail back to a random
            // retained size, exactly what Core::squashYoungerThan and
            // runahead-exit restoration do.
            const int keep =
                rob.empty() ? 0 : int(rng.next() % (rob.size() + 1));
            while (rob.size() > keep)
                rob.popTail();
        } else {
            rob.clear();
        }
        expectFormsAgree(rob, next_seq, step);
    }
    // The walk must have exercised a full window at least once.
    EXPECT_GT(next_seq, 1000u);
}

TEST(RobIndex, SetIndexedSelectsReferencePath)
{
    Rob rob(8);
    rob.push(makeUop(1, /*pc=*/3, /*dest=*/2, 0, 1));
    rob.push(makeUop(2, /*pc=*/3, /*dest=*/5, 2, kNoArchReg));

    EXPECT_TRUE(rob.indexed());
    const int via_index = rob.findOldestByPc(3, 1);
    rob.setIndexed(false);
    EXPECT_FALSE(rob.indexed());
    const int via_scan = rob.findOldestByPc(3, 1);
    EXPECT_EQ(via_index, via_scan);
    // The indexes stay maintained while disabled.
    rob.push(makeUop(3, /*pc=*/7, /*dest=*/2, 5, kNoArchReg));
    rob.setIndexed(true);
    EXPECT_EQ(rob.findOldestByPc(7, 0), rob.findOldestByPcScan(7, 0));
    EXPECT_EQ(rob.findProducer(2, 4), rob.findProducerScan(2, 4));
}

// --------------------------------------------------------------------
// Layer 2: whole-simulation differential (indexed vs reference scans)
// --------------------------------------------------------------------

constexpr RunaheadConfig kAllConfigs[] = {
    RunaheadConfig::kBaseline,         RunaheadConfig::kRunahead,
    RunaheadConfig::kRunaheadEnhanced, RunaheadConfig::kRunaheadBuffer,
    RunaheadConfig::kRunaheadBufferCC, RunaheadConfig::kHybrid,
};

/** Everything a differential pair compares. */
struct RunCapture
{
    std::vector<RefCommit> trace;
    std::map<std::string, double> stats;
    std::uint64_t cycles = 0;
};

RunCapture
runOne(RunaheadConfig rc, bool reference_scans, bool faulted)
{
    SimConfig config = makeConfig(rc, /*prefetch=*/false);
    config.warmupInstructions = 2'000;
    config.instructions = 15'000;
    config.checkLevel = CheckLevel::kFull;
    config.referenceScans = reference_scans;
    if (faulted) {
        // Speculative-only faults with violations routed to the
        // degradation ladder: chain generation keeps running against a
        // ROB whose contents the injector perturbs indirectly.
        config.checkPolicy = CheckPolicy::kDegrade;
        config.fault.enabled = true;
        config.fault.seed = 7;
        config.fault.chainCacheRate = 0.1;
        config.fault.bufferUopRate = 0.1;
    }
    config.finalize();

    Simulation sim(config, buildSuiteWorkload("mcf"));
    RunCapture cap;
    sim.core().setCommitHook([&](const DynUop &uop) {
        RefCommit c;
        c.pc = uop.pc;
        c.result = uop.sop.hasDest() || uop.isStore() ? uop.result : 0;
        c.addr = uop.sop.isMem() ? uop.effAddr : kNoAddr;
        c.taken = uop.isControl() && uop.actualTaken;
        cap.trace.push_back(c);
    });
    const SimResult result = sim.run();
    cap.cycles = result.cycles;

    cap.stats = sim.core().stats().collect();
    const std::map<std::string, double> mem = sim.memory().stats().collect();
    cap.stats.insert(mem.begin(), mem.end());
    return cap;
}

void
expectIdentical(const RunCapture &indexed, const RunCapture &scans,
                RunaheadConfig rc)
{
    const char *name = runaheadConfigName(rc);
    ASSERT_EQ(indexed.cycles, scans.cycles) << name;

    ASSERT_EQ(indexed.trace.size(), scans.trace.size()) << name;
    for (std::size_t i = 0; i < indexed.trace.size(); ++i) {
        ASSERT_EQ(indexed.trace[i].pc, scans.trace[i].pc)
            << name << " uop " << i;
        ASSERT_EQ(indexed.trace[i].result, scans.trace[i].result)
            << name << " uop " << i << " pc " << indexed.trace[i].pc;
        ASSERT_EQ(indexed.trace[i].addr, scans.trace[i].addr)
            << name << " uop " << i;
        ASSERT_EQ(indexed.trace[i].taken, scans.trace[i].taken)
            << name << " uop " << i;
    }

    ASSERT_EQ(indexed.stats.size(), scans.stats.size()) << name;
    for (const auto &[key, value] : scans.stats) {
        const auto it = indexed.stats.find(key);
        ASSERT_TRUE(it != indexed.stats.end())
            << name << " missing " << key;
        EXPECT_EQ(it->second, value) << name << " stat " << key;
    }
}

TEST(RobIndex, AllConfigsMatchReferenceScans)
{
    for (const RunaheadConfig rc : kAllConfigs) {
        const RunCapture indexed = runOne(rc, false, false);
        const RunCapture scans = runOne(rc, true, false);
        expectIdentical(indexed, scans, rc);
    }
}

TEST(RobIndex, AllConfigsMatchReferenceScansUnderFaults)
{
    for (const RunaheadConfig rc : kAllConfigs) {
        const RunCapture indexed = runOne(rc, false, true);
        const RunCapture scans = runOne(rc, true, true);
        expectIdentical(indexed, scans, rc);
    }
}

} // namespace
} // namespace rab
