/**
 * @file
 * Differential correctness tests: the out-of-order core's committed
 * instruction stream must exactly match the in-order reference
 * interpreter — on straight-line code, branchy code, memory-heavy code,
 * and (crucially) under every runahead configuration. Runahead is pure
 * microarchitectural speculation: it must never change architectural
 * results.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/simulation.hh"
#include "reference_interpreter.hh"
#include "workloads/suite.hh"

namespace rab
{
namespace
{

using test::RefCommit;
using test::ReferenceInterpreter;

/** Run @p program on the core and capture its commit stream. */
std::vector<RefCommit>
runCore(const Program &program, RunaheadConfig rc, std::uint64_t n,
        bool prefetch = false)
{
    SimConfig config = makeConfig(rc, prefetch);
    config.warmupInstructions = 0;
    config.instructions = n;
    Simulation sim(config, program);
    std::vector<RefCommit> trace;
    trace.reserve(n);
    sim.core().setCommitHook([&](const DynUop &uop) {
        RefCommit c;
        c.pc = uop.pc;
        c.result = uop.sop.hasDest() || uop.isStore() ? uop.result : 0;
        c.addr = uop.sop.isMem() ? uop.effAddr : kNoAddr;
        c.taken = uop.isControl() && uop.actualTaken;
        trace.push_back(c);
    });
    sim.run();
    trace.resize(std::min<std::size_t>(trace.size(), n));
    return trace;
}

void
expectTracesEqual(const std::vector<RefCommit> &ref,
                  const std::vector<RefCommit> &core,
                  const std::string &what)
{
    ASSERT_EQ(ref.size(), core.size()) << what;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(ref[i].pc, core[i].pc) << what << " @uop " << i;
        ASSERT_EQ(ref[i].result, core[i].result)
            << what << " @uop " << i << " pc " << ref[i].pc;
        ASSERT_EQ(ref[i].addr, core[i].addr) << what << " @uop " << i;
        ASSERT_EQ(ref[i].taken, core[i].taken) << what << " @uop " << i;
    }
}

void
checkProgram(const Program &program, std::uint64_t n)
{
    ReferenceInterpreter interp(program);
    const auto ref = interp.run(n);
    for (const RunaheadConfig rc :
         {RunaheadConfig::kBaseline, RunaheadConfig::kRunahead,
          RunaheadConfig::kRunaheadEnhanced,
          RunaheadConfig::kRunaheadBuffer,
          RunaheadConfig::kRunaheadBufferCC, RunaheadConfig::kHybrid}) {
        const auto core = runCore(program, rc, n);
        expectTracesEqual(ref, core,
                          std::string(program.name()) + "/"
                              + runaheadConfigName(rc));
    }
}

TEST(CoreDifferential, StraightLineArithmetic)
{
    ProgramBuilder b("arith");
    b.initReg(1, 3);
    auto loop = b.label();
    b.addi(1, 1, 5);
    b.mix(2, 1, 1, 17);
    b.alu(AluFunc::kXor, 3, 2, 1, 9);
    b.alu(AluFunc::kShl, 4, 3, kNoArchReg, 3);
    b.alu(AluFunc::kShr, 5, 4, kNoArchReg, 2);
    b.mul(6, 5, 2);
    b.fpAlu(7, 6, 1);
    b.jump(loop);
    checkProgram(b.build(), 4000);
}

TEST(CoreDifferential, DataDependentBranches)
{
    ProgramBuilder b("branchy");
    b.initReg(1, 0);
    auto loop = b.label();
    b.addi(1, 1, 1);
    b.mix(2, 1, 1, 3);
    b.alu(AluFunc::kAnd, 3, 2, kNoArchReg, 1);
    auto skip = b.futureLabel();
    b.branch(BranchCond::kNeZ, 3, kNoArchReg, skip);
    b.mix(4, 4, 2, 5);
    b.mix(4, 4, 1, 6);
    b.bind(skip);
    b.alu(AluFunc::kAnd, 5, 2, kNoArchReg, 7);
    auto skip2 = b.futureLabel();
    b.branch(BranchCond::kEqZ, 5, kNoArchReg, skip2);
    b.mix(6, 6, 5, 7);
    b.bind(skip2);
    b.jump(loop);
    checkProgram(b.build(), 4000);
}

TEST(CoreDifferential, StoreToLoadForwarding)
{
    ProgramBuilder b("stld");
    b.initReg(1, 0);
    b.initReg(10, 0x100000);
    auto loop = b.label();
    b.addi(1, 1, 8);
    b.alu(AluFunc::kAnd, 1, 1, kNoArchReg, 0x3ff8);
    b.add(3, 10, 1);
    b.mix(4, 1, 1, 11);
    b.store(3, 4, 0);    // write
    b.load(5, 3, 0);     // immediately reload (forwarded)
    b.mix(6, 6, 5, 13);
    b.load(7, 3, 8);     // neighbouring word (not forwarded)
    b.mix(6, 6, 7, 15);
    b.jump(loop);
    checkProgram(b.build(), 4000);
}

TEST(CoreDifferential, MemoryIntensiveGather)
{
    WorkloadParams p;
    p.name = "minimcf";
    p.family = WorkloadFamily::kGather;
    p.workingSetBytes = 8ull << 20;
    p.aluPerIter = 3;
    p.depLoads = 1;
    p.chainAlu = 4;
    checkProgram(buildWorkload(p), 3000);
}

TEST(CoreDifferential, PointerChase)
{
    WorkloadParams p;
    p.name = "minichase";
    p.family = WorkloadFamily::kChase;
    p.workingSetBytes = 1ull << 20;
    p.chainAlu = 6;
    p.aluPerIter = 2;
    checkProgram(buildWorkload(p), 2000);
}

TEST(CoreDifferential, PhasedGather)
{
    WorkloadParams p;
    p.name = "miniphased";
    p.family = WorkloadFamily::kGather;
    p.workingSetBytes = 4ull << 20;
    p.chainAlu = 8;
    p.memPhaseIters = 4;
    p.computePhaseIters = 10;
    p.aluPerIter = 2;
    checkProgram(buildWorkload(p), 3000);
}

TEST(CoreDifferential, AltChainsDiamond)
{
    WorkloadParams p;
    p.name = "minisphinx";
    p.family = WorkloadFamily::kGather;
    p.workingSetBytes = 2ull << 20;
    p.altChains = true;
    p.chainAlu = 6;
    p.aluPerIter = 2;
    checkProgram(buildWorkload(p), 3000);
}

TEST(CoreDifferential, StoreStream)
{
    WorkloadParams p;
    p.name = "minilbm";
    p.family = WorkloadFamily::kStream;
    p.workingSetBytes = 4ull << 20;
    p.strideBytes = 16;
    p.stores = true;
    p.aluPerIter = 3;
    p.chainAlu = 3;
    checkProgram(buildWorkload(p), 3000);
}

TEST(CoreDifferential, WithPrefetcherEnabled)
{
    // Timing changes; architecture must not.
    WorkloadParams p;
    p.name = "ministream";
    p.family = WorkloadFamily::kStream;
    p.workingSetBytes = 4ull << 20;
    p.strideBytes = 8;
    p.aluPerIter = 2;
    const Program program = buildWorkload(p);
    ReferenceInterpreter interp(program);
    const auto ref = interp.run(3000);
    const auto core =
        runCore(program, RunaheadConfig::kHybrid, 3000, true);
    expectTracesEqual(ref, core, "stream/hybrid+pf");
}

TEST(CoreDifferential, EverySuiteWorkloadShortRun)
{
    for (const WorkloadSpec &spec : spec06Suite()) {
        const Program program = buildWorkload(spec.params);
        ReferenceInterpreter interp(program);
        const auto ref = interp.run(1200);
        const auto core =
            runCore(program, RunaheadConfig::kHybrid, 1200);
        expectTracesEqual(ref, core, spec.params.name);
    }
}

} // namespace
} // namespace rab
