/**
 * @file
 * Unit tests: POWER4-style stream prefetcher with FDP throttling.
 */

#include <gtest/gtest.h>

#include "memory/stream_prefetcher.hh"

namespace rab
{
namespace
{

PrefetcherConfig
enabledConfig()
{
    PrefetcherConfig cfg;
    cfg.enabled = true;
    return cfg;
}

std::vector<Addr>
train(StreamPrefetcher &pf, Addr start_line, int count, int step = 1)
{
    std::vector<Addr> out;
    for (int i = 0; i < count; ++i)
        pf.observe((start_line + static_cast<Addr>(i) * step) * 64, true,
                   out);
    return out;
}

TEST(StreamPrefetcher, DisabledDoesNothing)
{
    PrefetcherConfig cfg;
    cfg.enabled = false;
    StreamPrefetcher pf(cfg, 64);
    std::vector<Addr> out;
    for (int i = 0; i < 10; ++i)
        pf.observe(i * 64, true, out);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(pf.issued.value(), 0u);
}

TEST(StreamPrefetcher, AscendingStreamConfirmsAndPrefetches)
{
    StreamPrefetcher pf(enabledConfig(), 64);
    const auto out = train(pf, 100, 5);
    EXPECT_FALSE(out.empty());
    // Prefetches run ahead of the demand pointer.
    for (const Addr a : out)
        EXPECT_GT(a / 64, 100u);
    EXPECT_EQ(pf.streamsAllocated.value(), 1u);
}

TEST(StreamPrefetcher, NoPrefetchBeforeConfirmation)
{
    StreamPrefetcher pf(enabledConfig(), 64);
    std::vector<Addr> out;
    pf.observe(100 * 64, true, out); // allocation only
    EXPECT_TRUE(out.empty());
}

TEST(StreamPrefetcher, DescendingStreamFollowsDirection)
{
    StreamPrefetcher pf(enabledConfig(), 64);
    std::vector<Addr> out;
    for (int i = 0; i < 6; ++i)
        pf.observe((1000 - i) * 64, true, out);
    ASSERT_FALSE(out.empty());
    for (const Addr a : out)
        EXPECT_LT(a / 64, 1000u - 2);
}

TEST(StreamPrefetcher, DegreeLimitsPerTrigger)
{
    StreamPrefetcher pf(enabledConfig(), 64);
    train(pf, 100, 3); // confirm
    std::vector<Addr> out;
    pf.observe(103 * 64, true, out);
    EXPECT_LE(static_cast<int>(out.size()), pf.currentDegree());
}

TEST(StreamPrefetcher, HeadStaysWithinDistance)
{
    StreamPrefetcher pf(enabledConfig(), 64);
    std::vector<Addr> all;
    for (int i = 0; i < 64; ++i)
        pf.observe((200 + i) * 64, true, all);
    for (const Addr a : all) {
        EXPECT_LE(static_cast<long>(a / 64) - (200 + 63),
                  pf.config().distance + 1);
    }
}

TEST(StreamPrefetcher, RandomAccessesDoNotConfirm)
{
    StreamPrefetcher pf(enabledConfig(), 64);
    std::vector<Addr> out;
    // Far-apart lines: never within any tracker's window.
    for (int i = 0; i < 20; ++i)
        pf.observe(static_cast<Addr>(i) * (1u << 20), true, out);
    EXPECT_TRUE(out.empty());
}

TEST(StreamPrefetcher, FdpThrottlesDownOnLowAccuracy)
{
    PrefetcherConfig cfg = enabledConfig();
    cfg.fdpInterval = 64;
    StreamPrefetcher pf(cfg, 64);
    const int d0 = pf.currentDistance();
    // Issue many prefetches, never report any useful.
    train(pf, 0, 400);
    EXPECT_LT(pf.currentDistance(), d0);
    EXPECT_GT(pf.fdpDowngrades.value(), 0u);
}

TEST(StreamPrefetcher, FdpRecoversOnHighAccuracy)
{
    PrefetcherConfig cfg = enabledConfig();
    cfg.fdpInterval = 64;
    StreamPrefetcher pf(cfg, 64);
    train(pf, 0, 400); // throttle down
    const int throttled = pf.currentDistance();
    // Now report everything useful.
    std::vector<Addr> out;
    for (int i = 400; i < 1200; ++i) {
        out.clear();
        pf.observe(static_cast<Addr>(i) * 64, true, out);
        for (std::size_t k = 0; k < out.size(); ++k)
            pf.notifyUseful();
    }
    EXPECT_GT(pf.currentDistance(), throttled);
    EXPECT_GT(pf.fdpUpgrades.value(), 0u);
}

TEST(StreamPrefetcher, TrackerCapacityRecycled)
{
    PrefetcherConfig cfg = enabledConfig();
    cfg.streams = 4;
    StreamPrefetcher pf(cfg, 64);
    std::vector<Addr> out;
    for (int s = 0; s < 10; ++s)
        pf.observe(static_cast<Addr>(s) * (1u << 22), true, out);
    EXPECT_EQ(pf.streamsAllocated.value(), 10u); // LRU reuse, no crash
}

} // namespace
} // namespace rab
