/**
 * @file
 * Unit tests: PC-indexed stride prefetcher.
 */

#include <gtest/gtest.h>

#include "core/simulation.hh"
#include "memory/stride_prefetcher.hh"
#include "workloads/suite.hh"

namespace rab
{
namespace
{

StridePrefetcher
makePf()
{
    return StridePrefetcher(StridePrefetcherConfig{}, 64);
}

TEST(StridePrefetcher, ConfirmsConstantStride)
{
    auto pf = makePf();
    std::vector<Addr> out;
    for (int i = 0; i < 5; ++i)
        pf.observe(/*pc=*/7, static_cast<Addr>(i) * 5 * 64, out);
    EXPECT_FALSE(out.empty());
    EXPECT_GT(pf.confirmations.value(), 0u);
    // Prefetches continue along the stride, ahead of the demand.
    for (const Addr a : out)
        EXPECT_EQ((a / 64) % 5, 0u);
    EXPECT_GT(out.back() / 64, 4u * 5u);
}

TEST(StridePrefetcher, FollowsNegativeStride)
{
    auto pf = makePf();
    std::vector<Addr> out;
    for (int i = 0; i < 5; ++i)
        pf.observe(9, static_cast<Addr>(1000 - i * 3) * 64, out);
    ASSERT_FALSE(out.empty());
    EXPECT_LT(out.back() / 64, 1000u - 12u);
}

TEST(StridePrefetcher, LargeStrideBeyondStreamWindow)
{
    // The stream prefetcher cannot track a 136-line stride; the stride
    // prefetcher can (this is the milc/GemsFDTD access pattern).
    auto pf = makePf();
    std::vector<Addr> out;
    for (int i = 0; i < 5; ++i)
        pf.observe(11, static_cast<Addr>(i) * 136 * 64, out);
    EXPECT_FALSE(out.empty());
}

TEST(StridePrefetcher, RandomAddressesNeverConfirm)
{
    auto pf = makePf();
    std::vector<Addr> out;
    Addr a = 0x123;
    for (int i = 0; i < 50; ++i) {
        a = a * 2862933555777941757ull + 3037000493ull;
        pf.observe(13, (a % (1u << 30)) & ~63ull, out);
    }
    EXPECT_TRUE(out.empty());
}

TEST(StridePrefetcher, DistinctPcsTrackIndependently)
{
    auto pf = makePf();
    std::vector<Addr> out_a;
    std::vector<Addr> out_b;
    for (int i = 0; i < 5; ++i) {
        pf.observe(1, static_cast<Addr>(i) * 2 * 64, out_a);
        pf.observe(2, static_cast<Addr>(i) * 7 * 64, out_b);
    }
    EXPECT_FALSE(out_a.empty());
    EXPECT_FALSE(out_b.empty());
}

TEST(StridePrefetcher, StrideChangeResetsConfidence)
{
    auto pf = makePf();
    std::vector<Addr> out;
    for (int i = 0; i < 4; ++i)
        pf.observe(5, static_cast<Addr>(i) * 2 * 64, out);
    const auto confident = out.size();
    out.clear();
    pf.observe(5, 999 * 64, out); // break the pattern
    pf.observe(5, 1500 * 64, out);
    EXPECT_TRUE(out.empty());
    (void)confident;
}

TEST(StridePrefetcher, DistanceBoundsLead)
{
    StridePrefetcherConfig cfg;
    cfg.distance = 4;
    cfg.degree = 8;
    StridePrefetcher pf(cfg, 64);
    std::vector<Addr> out;
    for (int i = 0; i < 3; ++i)
        pf.observe(3, static_cast<Addr>(i) * 64, out);
    out.clear();
    pf.observe(3, 3 * 64, out);
    EXPECT_LE(out.size(), 4u);
}

TEST(StridePrefetcher, EndToEndHelpsLargeStrideWorkload)
{
    // GemsFDTD's 8640-byte stride (135 lines) defeats the stream
    // prefetcher but is exactly what a stride prefetcher catches.
    const auto run = [&](PrefetcherKind kind, bool enabled) {
        SimConfig config = makeConfig(RunaheadConfig::kBaseline, enabled);
        config.mem.prefetcherKind = kind;
        config.instructions = 20'000;
        config.warmupInstructions = 5'000;
        Simulation sim(config, buildSuiteWorkload("GemsFDTD"));
        return sim.run().ipc;
    };
    const double base = run(PrefetcherKind::kStream, false);
    const double stream = run(PrefetcherKind::kStream, true);
    const double stride = run(PrefetcherKind::kStride, true);
    EXPECT_GT(stride, base * 1.05);  // stride prefetcher helps...
    EXPECT_GT(stride, stream * 1.05); // ...where the stream one cannot.
}

} // namespace
} // namespace rab
