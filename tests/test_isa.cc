/**
 * @file
 * Unit tests: uop semantics, functional memory, program builder.
 */

#include <gtest/gtest.h>

#include "isa/functional.hh"
#include "isa/program.hh"
#include "isa/uop.hh"

namespace rab
{
namespace
{

Uop
aluUop(AluFunc func, std::int64_t imm = 0)
{
    Uop u;
    u.op = Opcode::kIntAlu;
    u.func = func;
    u.dest = 1;
    u.src1 = 2;
    u.src2 = 3;
    u.imm = imm;
    return u;
}

TEST(Uop, Classification)
{
    Uop load;
    load.op = Opcode::kLoad;
    load.dest = 1;
    load.src1 = 2;
    EXPECT_TRUE(load.isLoad());
    EXPECT_TRUE(load.isMem());
    EXPECT_FALSE(load.isControl());
    EXPECT_TRUE(load.hasDest());
    EXPECT_EQ(load.numSrcs(), 1);

    Uop br;
    br.op = Opcode::kBranch;
    br.src1 = 4;
    EXPECT_TRUE(br.isControl());
    EXPECT_FALSE(br.hasDest());
}

TEST(Uop, ExecLatencies)
{
    EXPECT_EQ(execLatency(Opcode::kIntAlu), 1);
    EXPECT_EQ(execLatency(Opcode::kIntMul), 3);
    EXPECT_EQ(execLatency(Opcode::kIntDiv), 18);
    EXPECT_EQ(execLatency(Opcode::kFpAlu), 4);
    EXPECT_EQ(execLatency(Opcode::kFpMul), 6);
    EXPECT_EQ(execLatency(Opcode::kFpDiv), 24);
    EXPECT_EQ(execLatency(Opcode::kLoad), 1);
}

TEST(Alu, ArithmeticFunctions)
{
    EXPECT_EQ(evalAlu(aluUop(AluFunc::kAdd, 5), 10, 20), 35u);
    EXPECT_EQ(evalAlu(aluUop(AluFunc::kSub, 1), 20, 5), 16u);
    EXPECT_EQ(evalAlu(aluUop(AluFunc::kXor, 0), 0xff, 0x0f), 0xf0u);
    EXPECT_EQ(evalAlu(aluUop(AluFunc::kShl, 4), 3, 0), 48u);
    EXPECT_EQ(evalAlu(aluUop(AluFunc::kShr, 4), 48, 0), 3u);
    EXPECT_EQ(evalAlu(aluUop(AluFunc::kMov, 7), 10, 0), 17u);
    EXPECT_EQ(evalAlu(aluUop(AluFunc::kLi, 99), 1, 2), 99u);
}

TEST(Alu, AndMasksWithImmediate)
{
    // kAnd: s1 & (s2 | imm); with no second register value this is a
    // mask-with-immediate — the workload builders rely on it.
    EXPECT_EQ(evalAlu(aluUop(AluFunc::kAnd, 0xff), 0x1234, 0), 0x34u);
    EXPECT_EQ(evalAlu(aluUop(AluFunc::kAnd, 0), 0x1234, 0), 0u);
    EXPECT_EQ(evalAlu(aluUop(AluFunc::kAnd, 0), 0x1234, 0xf0), 0x30u);
}

TEST(Alu, MixDiffusesBits)
{
    const auto a = evalAlu(aluUop(AluFunc::kMix, 1), 1, 2);
    const auto b = evalAlu(aluUop(AluFunc::kMix, 1), 1, 3);
    const auto c = evalAlu(aluUop(AluFunc::kMix, 2), 1, 2);
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
}

TEST(Branch, Conditions)
{
    Uop br;
    br.op = Opcode::kBranch;
    br.cond = BranchCond::kEqZ;
    EXPECT_TRUE(evalBranch(br, 0, 9));
    EXPECT_FALSE(evalBranch(br, 1, 9));
    br.cond = BranchCond::kNeZ;
    EXPECT_TRUE(evalBranch(br, 1, 0));
    br.cond = BranchCond::kLtS;
    EXPECT_TRUE(evalBranch(br, static_cast<std::uint64_t>(-5), 3));
    EXPECT_FALSE(evalBranch(br, 3, static_cast<std::uint64_t>(-5)));
    br.cond = BranchCond::kGeU;
    EXPECT_TRUE(evalBranch(br, 7, 7));
    EXPECT_FALSE(evalBranch(br, 6, 7));
    br.cond = BranchCond::kAlways;
    EXPECT_TRUE(evalBranch(br, 0, 0));
}

TEST(FunctionalMemory, WriteReadAligned)
{
    FunctionalMemory mem;
    mem.write(0x1000, 42);
    EXPECT_EQ(mem.read(0x1000), 42u);
    // Sub-word addresses alias the containing 8-byte word.
    EXPECT_EQ(mem.read(0x1003), 42u);
    mem.write(0x1007, 7);
    EXPECT_EQ(mem.read(0x1000), 7u);
}

TEST(FunctionalMemory, BackgroundDeterministic)
{
    FunctionalMemory a;
    FunctionalMemory b;
    EXPECT_EQ(a.read(0x5000), b.read(0x5000));
    EXPECT_NE(a.read(0x5000), a.read(0x5008));
}

TEST(FunctionalMemory, CustomBackground)
{
    FunctionalMemory mem;
    mem.setBackground([](Addr addr) { return addr * 2; });
    EXPECT_EQ(mem.read(0x100), 0x200u);
    mem.write(0x100, 1);
    EXPECT_EQ(mem.read(0x100), 1u);
    mem.clear();
    EXPECT_EQ(mem.read(0x100), 0x200u);
}

TEST(ProgramBuilder, LabelsAndJumps)
{
    ProgramBuilder b("t");
    auto loop = b.label();
    b.addi(1, 1, 1);
    auto fwd = b.futureLabel();
    b.branch(BranchCond::kEqZ, 1, kNoArchReg, fwd);
    b.nop();
    b.bind(fwd);
    b.jump(loop);
    const Program p = b.build();
    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p.at(1).target, 3u); // forward branch to bind point
    EXPECT_EQ(p.at(3).target, 0u); // back jump to loop
}

TEST(ProgramBuilder, InitialRegsAndFetchWrap)
{
    ProgramBuilder b("t");
    b.initReg(3, 123);
    b.nop();
    b.nop();
    const Program p = b.build();
    EXPECT_EQ(p.initialReg(3), 123u);
    EXPECT_EQ(p.initialReg(4), 0u);
    EXPECT_EQ(&p.fetch(0), &p.fetch(2)); // wraps modulo size
}

TEST(ProgramBuilder, DisassembleListsEveryUop)
{
    ProgramBuilder b("t");
    b.load(1, 2, 8);
    b.store(2, 1, 0);
    const Program p = b.build();
    const std::string dis = p.disassemble();
    EXPECT_NE(dis.find("load"), std::string::npos);
    EXPECT_NE(dis.find("store"), std::string::npos);
}

TEST(ProgramBuilder, ValidateCatchesBadRegister)
{
    Program p("bad");
    Uop u;
    u.op = Opcode::kIntAlu;
    u.dest = 200; // out of range
    p.append(u);
    EXPECT_DEATH(p.validate(), "bad register");
}

} // namespace
} // namespace rab
