/**
 * @file
 * Unit tests: statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

namespace rab
{
namespace
{

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Distribution, MeanMinMax)
{
    Distribution d(0, 100, 10);
    d.sample(5);
    d.sample(15);
    d.sample(25, 2);
    EXPECT_EQ(d.samples(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), (5 + 15 + 25 + 25) / 4.0);
    EXPECT_EQ(d.min(), 5u);
    EXPECT_EQ(d.max(), 25u);
}

TEST(Distribution, Buckets)
{
    Distribution d(0, 100, 10);
    d.sample(5);
    d.sample(7);
    d.sample(15);
    EXPECT_EQ(d.bucketCount(3), 2u);  // bucket [0, 10)
    EXPECT_EQ(d.bucketCount(12), 1u); // bucket [10, 20)
    EXPECT_EQ(d.bucketCount(95), 0u);
}

TEST(Distribution, OverflowUnderflow)
{
    Distribution d(10, 20, 5);
    d.sample(5);   // underflow
    d.sample(100); // overflow
    EXPECT_EQ(d.bucketCount(5), 1u);
    EXPECT_EQ(d.bucketCount(100), 1u);
    EXPECT_EQ(d.samples(), 2u);
}

TEST(Distribution, Reset)
{
    Distribution d(0, 10, 1);
    d.sample(5);
    d.reset();
    EXPECT_EQ(d.samples(), 0u);
    EXPECT_EQ(d.bucketCount(5), 0u);
}

TEST(StatGroup, CollectAndGet)
{
    StatGroup root("root");
    Counter c;
    c += 3;
    double scalar = 1.5;
    root.addCounter("events", &c, "event counter");
    root.addScalar("ratio", &scalar);

    StatGroup child("child", &root);
    Counter c2;
    c2 += 9;
    child.addCounter("inner", &c2);

    const auto all = root.collect();
    EXPECT_EQ(all.at("root.events"), 3.0);
    EXPECT_EQ(all.at("root.ratio"), 1.5);
    EXPECT_EQ(all.at("root.child.inner"), 9.0);

    EXPECT_EQ(root.get("events"), 3.0);
    EXPECT_EQ(root.get("child.inner"), 9.0);
}

TEST(StatGroup, CollectReadsLiveValues)
{
    StatGroup root("root");
    Counter c;
    root.addCounter("c", &c);
    ++c;
    EXPECT_EQ(root.get("c"), 1.0);
    c += 10;
    EXPECT_EQ(root.get("c"), 11.0);
}

TEST(StatGroup, ResetCountersRecursive)
{
    StatGroup root("root");
    StatGroup child("child", &root);
    Counter a;
    Counter b;
    a += 5;
    b += 7;
    root.addCounter("a", &a);
    child.addCounter("b", &b);
    root.resetCounters();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(StatGroup, DumpContainsNames)
{
    StatGroup root("core");
    Counter c;
    c += 2;
    root.addCounter("commits", &c);
    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("core.commits"), std::string::npos);
}

TEST(StatGroup, GetUnknownPanics)
{
    StatGroup root("root");
    EXPECT_DEATH(root.get("nope"), "unknown stat");
}

TEST(StatGroup, ClaimExclusiveIsPerOwnerAndRecursive)
{
    StatGroup root("root");
    StatGroup child("child", &root);
    const int owner_a = 0;

    EXPECT_EQ(root.exclusiveOwner(), nullptr);
    root.claimExclusive(&owner_a);
    EXPECT_EQ(root.exclusiveOwner(), &owner_a);
    EXPECT_EQ(child.exclusiveOwner(), &owner_a);

    // Re-claiming with the same owner is idempotent.
    root.claimExclusive(&owner_a);

    // Releasing frees the whole subtree for the next run.
    root.releaseExclusive(&owner_a);
    EXPECT_EQ(root.exclusiveOwner(), nullptr);
    EXPECT_EQ(child.exclusiveOwner(), nullptr);
    const int owner_b = 0;
    root.claimExclusive(&owner_b);
    EXPECT_EQ(child.exclusiveOwner(), &owner_b);
}

TEST(StatGroup, AliasedClaimPanics)
{
    // Two live owners over the same stat storage is exactly the
    // counter-aliasing bug the sweep engine must never hit; the claim
    // turns it from silent corruption into an immediate panic.
    StatGroup root("root");
    const int owner_a = 0;
    const int owner_b = 0;
    root.claimExclusive(&owner_a);
    EXPECT_DEATH(root.claimExclusive(&owner_b), "already claimed");
}

TEST(StatGroup, AliasedChildClaimPanics)
{
    StatGroup root("root");
    StatGroup child("child", &root);
    const int owner_a = 0;
    const int owner_b = 0;
    child.claimExclusive(&owner_a);
    EXPECT_DEATH(root.claimExclusive(&owner_b), "already claimed");
}

} // namespace
} // namespace rab
