/**
 * @file
 * Unit tests: runahead controller policies — presets, entry decisions
 * (Fig. 8 flow), enhancement suppressions, interval bookkeeping.
 */

#include <gtest/gtest.h>

#include "backend/lsq.hh"
#include "backend/rob.hh"
#include "runahead/runahead_controller.hh"

namespace rab
{
namespace
{

DynUop
mk(SeqNum seq, Pc pc, Opcode op, ArchReg dest, ArchReg src1,
   ArchReg src2 = kNoArchReg)
{
    DynUop u;
    u.seq = seq;
    u.pc = pc;
    u.sop.op = op;
    u.sop.dest = dest;
    u.sop.src1 = src1;
    u.sop.src2 = src2;
    return u;
}

/** ROB with two instances of a 4-uop gather iteration; blocking load at
 *  seq 4, pc 3. */
struct ControllerFixture : ::testing::Test
{
    ControllerFixture() : rob(64), sq(8)
    {
        pushIteration(1);
        pushIteration(10);
        head = &rob.head();
        while (!head->isLoad())
            head = &rob.slot(rob.logicalToSlot(3));
        head->memIssued = true;
        head->llcMiss = true;
        head->offChipWait = true;
        head->missIssueInstrNum = 100;
    }

    void
    pushIteration(SeqNum base)
    {
        rob.push(mk(base + 0, 0, Opcode::kIntAlu, 1, 1));
        rob.push(mk(base + 1, 1, Opcode::kIntAlu, 2, 1, 1));
        rob.push(mk(base + 2, 2, Opcode::kIntAlu, 3, 10, 2));
        rob.push(mk(base + 3, 3, Opcode::kLoad, 4, 3));
    }

    Rob rob;
    StoreQueue sq;
    DynUop *head = nullptr;
};

TEST(Policies, PresetsMatchPaperConfigurations)
{
    EXPECT_FALSE(policyNone().anyRunahead());
    EXPECT_TRUE(policyTraditional().traditionalEnabled);
    EXPECT_FALSE(policyTraditional().enhancements);
    EXPECT_TRUE(policyTraditionalEnhanced().enhancements);
    EXPECT_TRUE(policyBuffer().bufferEnabled);
    EXPECT_FALSE(policyBuffer().chainCacheEnabled);
    EXPECT_TRUE(policyBufferChainCache().chainCacheEnabled);
    const RunaheadPolicy hybrid = policyHybrid();
    EXPECT_TRUE(hybrid.traditionalEnabled && hybrid.bufferEnabled
                && hybrid.chainCacheEnabled && hybrid.hybrid
                && hybrid.enhancements);
    EXPECT_EQ(hybrid.bufferEntries, 32);
    EXPECT_EQ(hybrid.chainCacheEntries, 2);
    EXPECT_EQ(hybrid.distanceThreshold, 250u);
}

TEST_F(ControllerFixture, DisabledPolicyNeverEnters)
{
    RunaheadController ctrl(policyNone());
    const EntryDecision d = ctrl.decideEntry(rob, sq, *head, 200, 50);
    EXPECT_FALSE(d.enter);
}

TEST_F(ControllerFixture, TraditionalAlwaysEnters)
{
    RunaheadController ctrl(policyTraditional());
    const EntryDecision d = ctrl.decideEntry(rob, sq, *head, 200, 50);
    EXPECT_TRUE(d.enter);
    EXPECT_EQ(d.mode, RunaheadMode::kTraditional);
}

TEST_F(ControllerFixture, BufferEntersWithChain)
{
    RunaheadController ctrl(policyBuffer());
    const EntryDecision d = ctrl.decideEntry(rob, sq, *head, 200, 50);
    ASSERT_TRUE(d.enter);
    EXPECT_EQ(d.mode, RunaheadMode::kBuffer);
    EXPECT_FALSE(d.usedCachedChain);
    EXPECT_GE(d.chain.size(), 4u);
    EXPECT_GT(d.generationCycles, 1);
}

TEST_F(ControllerFixture, BufferSkipsWithoutPcMatch)
{
    // Retire the younger instance so no second instance of pc 3 exists.
    Rob lone(64);
    lone.push(mk(1, 0, Opcode::kIntAlu, 1, 1));
    DynUop blocking = mk(2, 3, Opcode::kLoad, 4, 3);
    blocking.memIssued = blocking.llcMiss = blocking.offChipWait = true;
    lone.push(std::move(blocking));

    RunaheadController ctrl(policyBuffer());
    const EntryDecision d =
        ctrl.decideEntry(lone, sq, lone.slot(lone.tailSlot()), 200, 50);
    EXPECT_FALSE(d.enter);
    EXPECT_EQ(ctrl.noChainNoEntry.value(), 1u);
}

TEST_F(ControllerFixture, HybridFallsBackWithoutPcMatch)
{
    Rob lone(64);
    lone.push(mk(1, 0, Opcode::kIntAlu, 1, 1));
    DynUop blocking = mk(2, 3, Opcode::kLoad, 4, 3);
    blocking.memIssued = blocking.llcMiss = blocking.offChipWait = true;
    blocking.missIssueInstrNum = 100;
    lone.push(std::move(blocking));

    RunaheadPolicy policy = policyHybrid();
    policy.enhancements = false;
    RunaheadController ctrl(policy);
    const EntryDecision d =
        ctrl.decideEntry(lone, sq, lone.slot(lone.tailSlot()), 200, 50);
    ASSERT_TRUE(d.enter);
    EXPECT_EQ(d.mode, RunaheadMode::kTraditional);
}

TEST_F(ControllerFixture, HybridFallsBackOnOverlongChain)
{
    RunaheadPolicy policy = policyHybrid();
    policy.enhancements = false;
    policy.chainCacheEnabled = false;
    policy.chainGen.maxChainLength = 2; // every chain overflows
    RunaheadController ctrl(policy);
    const EntryDecision d = ctrl.decideEntry(rob, sq, *head, 200, 50);
    ASSERT_TRUE(d.enter);
    EXPECT_EQ(d.mode, RunaheadMode::kTraditional);
}

TEST_F(ControllerFixture, ChainCacheHitSkipsGeneration)
{
    RunaheadController ctrl(policyBufferChainCache());
    const EntryDecision first = ctrl.decideEntry(rob, sq, *head, 200, 50);
    ASSERT_TRUE(first.enter);
    EXPECT_FALSE(first.usedCachedChain);
    ctrl.enter(first, 0, 100, 50);
    ctrl.exit(100, 60);
    const EntryDecision second =
        ctrl.decideEntry(rob, sq, *head, 400, 80);
    ASSERT_TRUE(second.enter);
    EXPECT_TRUE(second.usedCachedChain);
    EXPECT_EQ(second.generationCycles, 1);
    EXPECT_TRUE(chainsEqual(first.chain, second.chain));
    EXPECT_GT(ctrl.chainCacheExactHits.value(), 0u);
}

TEST_F(ControllerFixture, Enhancement1SuppressesStaleMisses)
{
    RunaheadController ctrl(policyTraditionalEnhanced());
    // Miss issued at instruction 100; now at 100 + 250: too old.
    const EntryDecision d =
        ctrl.decideEntry(rob, sq, *head, /*fetched=*/350, /*retired=*/50);
    EXPECT_FALSE(d.enter);
    EXPECT_EQ(ctrl.suppressedShort.value(), 1u);
    // A fresh miss (issued 100 instructions ago) is allowed.
    const EntryDecision d2 = ctrl.decideEntry(rob, sq, *head, 200, 50);
    EXPECT_TRUE(d2.enter);
}

TEST_F(ControllerFixture, Enhancement2SuppressesOverlap)
{
    RunaheadController ctrl(policyTraditionalEnhanced());
    const EntryDecision d = ctrl.decideEntry(rob, sq, *head, 200, 50);
    ASSERT_TRUE(d.enter);
    ctrl.enter(d, 0, 100, /*retired=*/50);
    ctrl.exit(100, /*farthest=*/90); // covered up to instruction 90
    // Re-entry at retired=70 (< 90) overlaps the last interval.
    const EntryDecision d2 = ctrl.decideEntry(rob, sq, *head, 260, 70);
    EXPECT_FALSE(d2.enter);
    EXPECT_EQ(ctrl.suppressedOverlap.value(), 1u);
    // Past the covered point, entry is allowed again.
    const EntryDecision d3 = ctrl.decideEntry(rob, sq, *head, 260, 95);
    EXPECT_TRUE(d3.enter);
}

TEST_F(ControllerFixture, IntervalBookkeeping)
{
    RunaheadController ctrl(policyTraditional());
    const EntryDecision d = ctrl.decideEntry(rob, sq, *head, 200, 50);
    ctrl.enter(d, 10, 110, 50);
    EXPECT_TRUE(ctrl.inRunahead());
    EXPECT_EQ(ctrl.mode(), RunaheadMode::kTraditional);
    EXPECT_FALSE(ctrl.shouldExit(109));
    EXPECT_TRUE(ctrl.shouldExit(110));
    ctrl.noteRunaheadMiss();
    ctrl.noteRunaheadMiss();
    ctrl.tickCycle();
    ctrl.exit(110, 60);
    EXPECT_FALSE(ctrl.inRunahead());
    EXPECT_EQ(ctrl.intervals.value(), 1u);
    EXPECT_DOUBLE_EQ(ctrl.missesPerInterval(), 2.0);
    EXPECT_EQ(ctrl.cyclesTraditional.value(), 1u);
    EXPECT_DOUBLE_EQ(ctrl.bufferCycleFraction(), 0.0);
}

TEST_F(ControllerFixture, BufferIssueDelayedByGeneration)
{
    RunaheadController ctrl(policyBuffer());
    const EntryDecision d = ctrl.decideEntry(rob, sq, *head, 200, 50);
    ASSERT_TRUE(d.enter);
    ctrl.enter(d, 10, 200, 50);
    EXPECT_EQ(ctrl.bufferIssueStart(),
              static_cast<Cycle>(10 + d.generationCycles));
    EXPECT_TRUE(ctrl.buffer().active());
    ctrl.exit(200, 50);
    EXPECT_FALSE(ctrl.buffer().active());
}

TEST_F(ControllerFixture, RunaheadCacheClearedOnExit)
{
    RunaheadController ctrl(policyTraditional());
    const EntryDecision d = ctrl.decideEntry(rob, sq, *head, 200, 50);
    ctrl.enter(d, 0, 100, 50);
    ctrl.runaheadCache().write(0x100, 7);
    ctrl.exit(100, 60);
    std::uint64_t data = 0;
    EXPECT_FALSE(ctrl.runaheadCache().read(0x100, data));
}

TEST_F(ControllerFixture, DoubleEnterPanics)
{
    RunaheadController ctrl(policyTraditional());
    const EntryDecision d = ctrl.decideEntry(rob, sq, *head, 200, 50);
    ctrl.enter(d, 0, 100, 50);
    EXPECT_DEATH(ctrl.enter(d, 1, 100, 50), "bad entry");
}

} // namespace
} // namespace rab
