/**
 * @file
 * Fuzz testing: generate random (but valid) programs — random ALU ops,
 * data-dependent branches, loads and stores over bounded regions —
 * and require the out-of-order core to commit exactly the reference
 * interpreter's stream under several runahead configurations. This is
 * the widest net for pipeline bugs (forwarding, squash, poison,
 * checkpoint/restore) the suite casts.
 *
 * Every run executes with the invariant checker at full strength, so a
 * clean fuzz pass also certifies that no microarchitectural invariant
 * (see src/checker) was violated along the way.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/simulation.hh"
#include "reference_interpreter.hh"

namespace rab
{
namespace
{

using test::RefCommit;
using test::ReferenceInterpreter;

/** Generate a random single-loop program. Register conventions:
 *  r1..r7 data, r8 scratch, r10/r11 region bases. */
Program
randomProgram(std::uint64_t seed, int body_ops)
{
    Rng rng(seed);
    ProgramBuilder b(strprintf("fuzz%llu", (unsigned long long)seed));
    b.initReg(10, 0x10000000); // large region (misses)
    b.initReg(11, 0x00100000); // small region (hits)
    for (ArchReg r = 1; r <= 7; ++r)
        b.initReg(r, rng.next());

    auto loop = b.label();
    // Pending forward-branch fixups: (label, ops until bind).
    std::vector<std::pair<ProgramBuilder::Label, int>> pending;

    const auto reg = [&]() -> ArchReg {
        return static_cast<ArchReg>(1 + rng.range(7));
    };

    for (int i = 0; i < body_ops; ++i) {
        // Bind any due forward labels (diamond joins).
        for (auto it = pending.begin(); it != pending.end();) {
            if (--it->second <= 0) {
                b.bind(it->first);
                it = pending.erase(it);
            } else {
                ++it;
            }
        }

        switch (rng.range(10)) {
          case 0:
          case 1:
          case 2: // plain ALU
            b.alu(static_cast<AluFunc>(rng.range(8)), reg(), reg(),
                  reg(), static_cast<std::int64_t>(rng.range(1024)));
            break;
          case 3:
            b.mul(reg(), reg(), reg());
            break;
          case 4:
            b.fpAlu(reg(), reg(), reg());
            break;
          case 5:
          case 6: { // load from one of the regions
            const ArchReg base = rng.chance(0.5) ? 10 : 11;
            b.alu(AluFunc::kAnd, 8, reg(), kNoArchReg,
                  static_cast<std::int64_t>(
                      (base == 10 ? (8u << 20) : (64u << 10)) - 8));
            b.add(8, base, 8);
            b.load(reg(), 8, 0);
            break;
          }
          case 7: { // store into the small region
            b.alu(AluFunc::kAnd, 8, reg(), kNoArchReg,
                  static_cast<std::int64_t>((64u << 10) - 8));
            b.add(8, 11, 8);
            b.store(8, reg(), 0);
            break;
          }
          case 8: { // possible store-to-load forwarding pair
            b.alu(AluFunc::kAnd, 8, reg(), kNoArchReg, 0xff8);
            b.add(8, 11, 8);
            b.store(8, reg(), 0);
            b.load(reg(), 8, 0);
            break;
          }
          case 9: { // data-dependent forward branch (diamond)
            b.alu(AluFunc::kAnd, 8, reg(), kNoArchReg,
                  static_cast<std::int64_t>(1 + rng.range(3)));
            auto skip = b.futureLabel();
            b.branch(rng.chance(0.5) ? BranchCond::kNeZ
                                     : BranchCond::kEqZ,
                     8, kNoArchReg, skip);
            pending.emplace_back(skip,
                                 static_cast<int>(1 + rng.range(4)));
            break;
          }
        }
    }
    for (auto &[label, ops] : pending)
        b.bind(label);
    b.jump(loop);
    return b.build();
}

class FuzzDifferential : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzDifferential, CommitsReferenceStream)
{
    const std::uint64_t seed = GetParam();
    const Program program = randomProgram(seed, 24);
    constexpr std::uint64_t kInstructions = 1'200;

    ReferenceInterpreter interp(program);
    const auto ref = interp.run(kInstructions);

    for (const RunaheadConfig rc :
         {RunaheadConfig::kBaseline, RunaheadConfig::kRunahead,
          RunaheadConfig::kRunaheadBufferCC, RunaheadConfig::kHybrid}) {
        SimConfig config = makeConfig(rc, seed % 2 == 0);
        config.warmupInstructions = 0;
        config.instructions = kInstructions;
        config.checkLevel = CheckLevel::kFull;
        config.core.checkLevel = CheckLevel::kFull;
        Simulation sim(config, program);
        std::vector<RefCommit> trace;
        sim.core().setCommitHook([&](const DynUop &uop) {
            RefCommit c;
            c.pc = uop.pc;
            c.result =
                uop.sop.hasDest() || uop.isStore() ? uop.result : 0;
            c.addr = uop.sop.isMem() ? uop.effAddr : kNoAddr;
            c.taken = uop.isControl() && uop.actualTaken;
            trace.push_back(c);
        });
        sim.run();
        trace.resize(std::min<std::size_t>(trace.size(), kInstructions));

        // A violation would have thrown out of run(); assert the
        // checker actually scanned and stayed clean.
        ASSERT_EQ(sim.core().checker().level(), CheckLevel::kFull);
        ASSERT_EQ(sim.core().checker().violations.value(), 0u)
            << "seed " << seed << " config " << runaheadConfigName(rc);
        ASSERT_GT(sim.core().checker().checksRun.value(), 0u)
            << "seed " << seed << " config " << runaheadConfigName(rc);

        ASSERT_EQ(trace.size(), ref.size())
            << "seed " << seed << " config " << runaheadConfigName(rc);
        for (std::size_t i = 0; i < ref.size(); ++i) {
            ASSERT_EQ(ref[i].pc, trace[i].pc)
                << "seed " << seed << " " << runaheadConfigName(rc)
                << " uop " << i;
            ASSERT_EQ(ref[i].result, trace[i].result)
                << "seed " << seed << " " << runaheadConfigName(rc)
                << " uop " << i << " pc " << ref[i].pc;
            ASSERT_EQ(ref[i].addr, trace[i].addr)
                << "seed " << seed << " " << runaheadConfigName(rc)
                << " uop " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Range<std::uint64_t>(1, 25));

/** Same reference-stream requirement, but with speculative-only fault
 *  injection active (chain-cache and runahead-buffer corruption, the
 *  checker routing violations to the degradation ladder). The commit
 *  stream must still match the interpreter bit for bit: corrupt
 *  speculative state may only ever cost performance. */
class FuzzDifferentialFaults
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzDifferentialFaults, SpeculativeFaultsCommitReferenceStream)
{
    const std::uint64_t seed = GetParam();
    const Program program = randomProgram(seed, 24);
    constexpr std::uint64_t kInstructions = 1'200;

    ReferenceInterpreter interp(program);
    const auto ref = interp.run(kInstructions);

    for (const RunaheadConfig rc :
         {RunaheadConfig::kRunaheadBufferCC, RunaheadConfig::kHybrid}) {
        SimConfig config = makeConfig(rc, false);
        config.warmupInstructions = 0;
        config.instructions = kInstructions;
        config.checkLevel = CheckLevel::kFull;
        config.core.checkLevel = CheckLevel::kFull;
        config.checkPolicy = CheckPolicy::kDegrade;
        config.fault.enabled = true;
        config.fault.seed = seed;
        config.fault.chainCacheRate = 0.1;
        config.fault.bufferUopRate = 0.1;
        config.finalize();
        Simulation sim(config, program);
        std::vector<RefCommit> trace;
        sim.core().setCommitHook([&](const DynUop &uop) {
            RefCommit c;
            c.pc = uop.pc;
            c.result =
                uop.sop.hasDest() || uop.isStore() ? uop.result : 0;
            c.addr = uop.sop.isMem() ? uop.effAddr : kNoAddr;
            c.taken = uop.isControl() && uop.actualTaken;
            trace.push_back(c);
        });
        sim.run();
        trace.resize(std::min<std::size_t>(trace.size(), kInstructions));

        ASSERT_EQ(trace.size(), ref.size())
            << "seed " << seed << " config " << runaheadConfigName(rc);
        for (std::size_t i = 0; i < ref.size(); ++i) {
            ASSERT_EQ(ref[i].pc, trace[i].pc)
                << "seed " << seed << " " << runaheadConfigName(rc)
                << " uop " << i;
            ASSERT_EQ(ref[i].result, trace[i].result)
                << "seed " << seed << " " << runaheadConfigName(rc)
                << " uop " << i << " pc " << ref[i].pc;
            ASSERT_EQ(ref[i].addr, trace[i].addr)
                << "seed " << seed << " " << runaheadConfigName(rc)
                << " uop " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferentialFaults,
                         ::testing::Range<std::uint64_t>(1, 9));

} // namespace
} // namespace rab
