/**
 * @file
 * Unit tests: runahead cache, chain cache, runahead buffer, and the
 * dependence chain generator (Algorithm 1).
 */

#include <gtest/gtest.h>

#include "backend/lsq.hh"
#include "backend/rob.hh"
#include "runahead/chain_cache.hh"
#include "runahead/chain_generator.hh"
#include "runahead/runahead_buffer.hh"
#include "runahead/runahead_cache.hh"

namespace rab
{
namespace
{

// --------------------------------------------------------------------
// RunaheadCache
// --------------------------------------------------------------------

TEST(RunaheadCache, WriteReadForward)
{
    RunaheadCache rc{RunaheadCacheConfig{}};
    rc.write(0x1000, 42);
    std::uint64_t data = 0;
    EXPECT_TRUE(rc.read(0x1000, data));
    EXPECT_EQ(data, 42u);
    EXPECT_FALSE(rc.read(0x2000, data));
}

TEST(RunaheadCache, OverwriteSameWord)
{
    RunaheadCache rc{RunaheadCacheConfig{}};
    rc.write(0x1000, 1);
    rc.write(0x1000, 2);
    std::uint64_t data = 0;
    ASSERT_TRUE(rc.read(0x1000, data));
    EXPECT_EQ(data, 2u);
    EXPECT_EQ(rc.occupancy(), 1u);
}

TEST(RunaheadCache, LruWithinSet)
{
    // 512 B, 4-way, 8 B lines -> 16 sets; set stride = 128 bytes.
    RunaheadCache rc{RunaheadCacheConfig{}};
    for (int i = 0; i < 5; ++i)
        rc.write(0x1000 + static_cast<Addr>(i) * 128, i);
    std::uint64_t data = 0;
    EXPECT_FALSE(rc.read(0x1000, data)); // oldest evicted
    EXPECT_TRUE(rc.read(0x1000 + 4 * 128, data));
}

TEST(RunaheadCache, ClearOnRunaheadExit)
{
    RunaheadCache rc{RunaheadCacheConfig{}};
    rc.write(0x1000, 7);
    rc.clear();
    std::uint64_t data = 0;
    EXPECT_FALSE(rc.read(0x1000, data));
    EXPECT_EQ(rc.occupancy(), 0u);
}

// --------------------------------------------------------------------
// ChainCache
// --------------------------------------------------------------------

DependenceChain
chainOfLength(int n, Pc base = 0)
{
    DependenceChain chain;
    for (int i = 0; i < n; ++i) {
        ChainOp op;
        op.pc = base + static_cast<Pc>(i);
        op.sop.op = Opcode::kIntAlu;
        op.sop.dest = 1;
        chain.push_back(op);
    }
    return chain;
}

TEST(ChainCache, HitAfterInsert)
{
    ChainCache cc(2);
    cc.insert(100, chainOfLength(3));
    const DependenceChain *hit = cc.lookup(100);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->size(), 3u);
    EXPECT_EQ(cc.hits.value(), 1u);
    EXPECT_EQ(cc.lookup(200), nullptr);
    EXPECT_EQ(cc.misses.value(), 1u);
}

TEST(ChainCache, NoPathAssociativity)
{
    ChainCache cc(2);
    cc.insert(100, chainOfLength(3));
    cc.insert(100, chainOfLength(5)); // replaces, never duplicates
    const DependenceChain *hit = cc.lookup(100);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->size(), 5u);
}

TEST(ChainCache, LruReplacement)
{
    ChainCache cc(2);
    cc.insert(1, chainOfLength(1));
    cc.insert(2, chainOfLength(2));
    cc.lookup(1); // 2 becomes LRU
    cc.insert(3, chainOfLength(3));
    EXPECT_NE(cc.lookup(1), nullptr);
    EXPECT_EQ(cc.lookup(2), nullptr);
    EXPECT_NE(cc.lookup(3), nullptr);
}

TEST(ChainCache, ClearEmpties)
{
    ChainCache cc(2);
    cc.insert(1, chainOfLength(1));
    cc.clear();
    EXPECT_EQ(cc.lookup(1), nullptr);
}

TEST(ChainCache, LruRestartsAfterClear)
{
    // Regression: clear() used to keep the LRU counter running, so
    // slots refilled after a clear (a DegradationLadder re-enable)
    // inherited replacement order from pre-clear history. Victim
    // selection must depend only on post-clear accesses.
    ChainCache cc(2);
    // Age the counter well past anything the post-clear phase reaches.
    for (Pc pc = 1; pc <= 50; ++pc) {
        cc.insert(pc, chainOfLength(1));
        cc.lookup(pc);
    }
    cc.clear();

    cc.insert(100, chainOfLength(1));
    cc.insert(200, chainOfLength(2));
    cc.lookup(100); // 200 becomes LRU
    cc.insert(300, chainOfLength(3));
    EXPECT_NE(cc.lookup(100), nullptr);
    EXPECT_EQ(cc.lookup(200), nullptr); // victim, not a stale stamp
    EXPECT_NE(cc.lookup(300), nullptr);
}

TEST(Chain, SignatureAndEquality)
{
    const DependenceChain a = chainOfLength(4);
    const DependenceChain b = chainOfLength(4);
    DependenceChain c = chainOfLength(4);
    c[2].sop.imm = 99;
    EXPECT_EQ(chainSignature(a), chainSignature(b));
    EXPECT_TRUE(chainsEqual(a, b));
    EXPECT_FALSE(chainsEqual(a, c));
    EXPECT_FALSE(chainsEqual(a, chainOfLength(3)));
}

// --------------------------------------------------------------------
// RunaheadBuffer
// --------------------------------------------------------------------

TEST(RunaheadBuffer, LoopsOverChain)
{
    RunaheadBuffer buffer(32);
    buffer.fill(chainOfLength(3));
    EXPECT_TRUE(buffer.hasOp());
    EXPECT_EQ(buffer.peek().pc, 0u);
    buffer.advance();
    buffer.advance();
    EXPECT_EQ(buffer.peek().pc, 2u);
    buffer.advance(); // wraps
    EXPECT_EQ(buffer.peek().pc, 0u);
    EXPECT_EQ(buffer.iterationsCompleted(), 1u);
}

TEST(RunaheadBuffer, TruncatesToCapacity)
{
    RunaheadBuffer buffer(4);
    buffer.fill(chainOfLength(10));
    EXPECT_EQ(buffer.chainLength(), 4u);
}

TEST(RunaheadBuffer, DeactivateStopsIssue)
{
    RunaheadBuffer buffer(32);
    buffer.fill(chainOfLength(2));
    buffer.deactivate();
    EXPECT_FALSE(buffer.hasOp());
    EXPECT_DEATH(buffer.peek(), "inactive");
}

// --------------------------------------------------------------------
// ChainGenerator (Algorithm 1)
// --------------------------------------------------------------------

/** Build a ROB holding two unrolled iterations of a gather loop:
 *    addi r1 <- r1 + 1
 *    mix  r2 <- r1, r1
 *    add  r3 <- r10 + r2
 *    load r4 <- [r3]
 *    (filler with no relation to the chain)
 */
struct ChainGenFixture : ::testing::Test
{
    ChainGenFixture() : rob(64), sq(8) {}

    DynUop
    mk(SeqNum seq, Pc pc, Opcode op, ArchReg dest, ArchReg src1,
       ArchReg src2 = kNoArchReg)
    {
        DynUop u;
        u.seq = seq;
        u.pc = pc;
        u.sop.op = op;
        u.sop.dest = dest;
        u.sop.src1 = src1;
        u.sop.src2 = src2;
        return u;
    }

    void
    pushIteration(SeqNum base)
    {
        rob.push(mk(base + 0, 0, Opcode::kIntAlu, 1, 1));
        rob.push(mk(base + 1, 1, Opcode::kIntAlu, 2, 1, 1));
        rob.push(mk(base + 2, 2, Opcode::kIntAlu, 3, 10, 2));
        rob.push(mk(base + 3, 3, Opcode::kLoad, 4, 3));
        rob.push(mk(base + 4, 4, Opcode::kIntAlu, 20, 20, 4)); // filler
        rob.push(mk(base + 5, 5, Opcode::kJump, kNoArchReg,
                    kNoArchReg));
    }

    Rob rob;
    StoreQueue sq;
};

TEST_F(ChainGenFixture, FindsFilteredChain)
{
    pushIteration(1);  // blocking iteration (head load seq=4 at pc 3)
    pushIteration(10); // younger instance
    ChainGenerator gen{ChainGeneratorConfig{}};
    const ChainResult result = gen.generate(rob, sq, /*pc=*/3,
                                            /*blocking_seq=*/4);
    ASSERT_TRUE(result.pcFound);
    EXPECT_FALSE(result.overflow);
    // Chain = {addi, mix, add, load} of the younger iteration (plus
    // the previous iteration's induction addi, reached through the
    // loop-carried r1), in program order; filler and jump excluded.
    ASSERT_GE(result.chain.size(), 4u);
    ASSERT_LE(result.chain.size(), 5u);
    for (const ChainOp &op : result.chain) {
        EXPECT_LE(op.pc, 3u); // never filler (pc 4) or jump (pc 5)
    }
    EXPECT_EQ(result.chain.back().pc, 3u);
    EXPECT_EQ(result.chain.back().sop.op, Opcode::kLoad);
    // The induction must be present so a buffer loop advances.
    EXPECT_EQ(result.chain.front().pc, 0u);
    EXPECT_GT(result.generationCycles, 0);
    EXPECT_GT(result.regCamSearches, 0);
}

TEST_F(ChainGenFixture, NoPcMatchReported)
{
    pushIteration(1);
    ChainGenerator gen{ChainGeneratorConfig{}};
    const ChainResult result = gen.generate(rob, sq, 3, /*seq=*/4);
    EXPECT_FALSE(result.pcFound);
    EXPECT_EQ(gen.noPcMatch.value(), 1u);
}

TEST_F(ChainGenFixture, LengthCapSetsOverflow)
{
    pushIteration(1);
    pushIteration(10);
    ChainGeneratorConfig cfg;
    cfg.maxChainLength = 2;
    ChainGenerator gen(cfg);
    const ChainResult result = gen.generate(rob, sq, 3, 4);
    EXPECT_TRUE(result.pcFound);
    EXPECT_TRUE(result.overflow);
    EXPECT_LE(result.chain.size(), 2u);
}

TEST_F(ChainGenFixture, StoreQueueProducerIncluded)
{
    // Iteration that spills r2 then reloads it:
    //   addi r1; mix r2<-r1; store [r11]<-r2; load r5<-[r11];
    //   add r3<-r10+r5; load r4<-[r3]
    const auto push_spill_iter = [&](SeqNum base) {
        rob.push(mk(base + 0, 0, Opcode::kIntAlu, 1, 1));
        rob.push(mk(base + 1, 1, Opcode::kIntAlu, 2, 1, 1));
        DynUop st = mk(base + 2, 2, Opcode::kStore, kNoArchReg, 11, 2);
        st.effAddr = 0x800;
        const int st_slot = rob.push(std::move(st));
        sq.allocate(base + 2, st_slot);
        sq.setAddress(base + 2, 0x800, false);
        DynUop ld = mk(base + 3, 3, Opcode::kLoad, 5, 11);
        ld.effAddr = 0x800;
        rob.push(std::move(ld));
        rob.push(mk(base + 4, 4, Opcode::kIntAlu, 3, 10, 5));
        rob.push(mk(base + 5, 5, Opcode::kLoad, 4, 3));
    };
    push_spill_iter(1);
    push_spill_iter(10);

    ChainGenerator gen{ChainGeneratorConfig{}};
    const ChainResult result = gen.generate(rob, sq, 5, /*seq=*/6);
    ASSERT_TRUE(result.pcFound);
    bool has_store = false;
    for (const ChainOp &op : result.chain)
        has_store |= op.sop.isStore();
    EXPECT_TRUE(has_store);
    EXPECT_GT(result.sqSearches, 0);
}

TEST_F(ChainGenFixture, CycleCostScalesWithSearches)
{
    pushIteration(1);
    pushIteration(10);
    ChainGenerator gen{ChainGeneratorConfig{}};
    const ChainResult result = gen.generate(rob, sq, 3, 4);
    // 1 (PC CAM) + ceil(searches / 2 ports) <= cycles, plus readout.
    EXPECT_GE(result.generationCycles,
              1 + (result.regCamSearches + 1) / 2);
}

} // namespace
} // namespace rab
