/**
 * @file
 * Property tests: architectural correctness must hold across the
 * microarchitectural design space. Every (ROB size, width, RS size,
 * memory queue, runahead config) point must commit exactly the
 * reference instruction stream — timing changes, results never do.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/simulation.hh"
#include "reference_interpreter.hh"
#include "workloads/suite.hh"

namespace rab
{
namespace
{

using test::RefCommit;
using test::ReferenceInterpreter;

Program
mixedProgram()
{
    // Branchy + memory-heavy + store/load forwarding in one kernel.
    ProgramBuilder b("mixed");
    b.initReg(1, 0);
    b.initReg(10, 0x20000000);
    b.initReg(11, 0x100000);
    auto loop = b.label();
    b.addi(1, 1, 1);
    b.mix(2, 1, 1, 3);
    b.alu(AluFunc::kAnd, 3, 2, kNoArchReg, (16ull << 20) - 8);
    b.add(3, 10, 3);
    b.load(4, 3, 0);
    b.alu(AluFunc::kAnd, 5, 1, kNoArchReg, 0xff8);
    b.add(5, 11, 5);
    b.store(5, 2, 0);
    b.load(6, 5, 0);
    auto skip = b.futureLabel();
    b.alu(AluFunc::kAnd, 7, 4, kNoArchReg, 1);
    b.branch(BranchCond::kNeZ, 7, kNoArchReg, skip);
    b.mix(8, 8, 6, 7);
    b.mul(9, 8, 2);
    b.bind(skip);
    b.fpAlu(12, 12, 4);
    b.jump(loop);
    return b.build();
}

/** (robEntries, width, rsEntries, memQueue, runahead config) */
using ConfigPoint = std::tuple<int, int, int, int, RunaheadConfig>;

class CoreConfigSweep : public ::testing::TestWithParam<ConfigPoint>
{
};

TEST_P(CoreConfigSweep, CommitsReferenceStream)
{
    const auto [rob, width, rs, mem_queue, rc] = GetParam();
    const Program program = mixedProgram();
    constexpr std::uint64_t kInstructions = 1500;

    ReferenceInterpreter interp(program);
    const auto ref = interp.run(kInstructions);

    SimConfig config = makeConfig(rc, false);
    config.warmupInstructions = 0;
    config.instructions = kInstructions;
    config.core.robEntries = rob;
    config.core.fetchWidth = width;
    config.core.renameWidth = width;
    config.core.issueWidth = width;
    config.core.commitWidth = width;
    config.core.rsEntries = rs;
    config.mem.memQueueEntries = mem_queue;
    config.mem.runaheadQueueReserve = mem_queue / 4;

    Simulation sim(config, program);
    std::vector<RefCommit> trace;
    sim.core().setCommitHook([&](const DynUop &uop) {
        RefCommit c;
        c.pc = uop.pc;
        c.result = uop.sop.hasDest() || uop.isStore() ? uop.result : 0;
        c.addr = uop.sop.isMem() ? uop.effAddr : kNoAddr;
        c.taken = uop.isControl() && uop.actualTaken;
        trace.push_back(c);
    });
    sim.run();
    trace.resize(std::min<std::size_t>(trace.size(), kInstructions));

    ASSERT_EQ(trace.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(ref[i].pc, trace[i].pc) << "uop " << i;
        ASSERT_EQ(ref[i].result, trace[i].result) << "uop " << i;
        ASSERT_EQ(ref[i].addr, trace[i].addr) << "uop " << i;
        ASSERT_EQ(ref[i].taken, trace[i].taken) << "uop " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    DesignSpace, CoreConfigSweep,
    ::testing::Values(
        // Narrow / small-window machines.
        ConfigPoint{32, 1, 16, 8, RunaheadConfig::kBaseline},
        ConfigPoint{32, 1, 16, 8, RunaheadConfig::kHybrid},
        ConfigPoint{64, 2, 32, 16, RunaheadConfig::kRunahead},
        ConfigPoint{64, 2, 32, 16, RunaheadConfig::kRunaheadBufferCC},
        // The Table 1 machine.
        ConfigPoint{192, 4, 92, 64, RunaheadConfig::kBaseline},
        ConfigPoint{192, 4, 92, 64, RunaheadConfig::kRunahead},
        ConfigPoint{192, 4, 92, 64, RunaheadConfig::kRunaheadBuffer},
        ConfigPoint{192, 4, 92, 64, RunaheadConfig::kRunaheadBufferCC},
        ConfigPoint{192, 4, 92, 64, RunaheadConfig::kHybrid},
        ConfigPoint{192, 4, 92, 64, RunaheadConfig::kRunaheadEnhanced},
        // Wide / future machines.
        ConfigPoint{384, 8, 128, 128, RunaheadConfig::kBaseline},
        ConfigPoint{384, 8, 128, 128, RunaheadConfig::kHybrid},
        // Tiny memory queue (heavy rejection/retry paths).
        ConfigPoint{192, 4, 92, 4, RunaheadConfig::kHybrid},
        ConfigPoint{192, 4, 92, 4, RunaheadConfig::kRunahead}));

/** Timing sanity across the sweep: bigger windows never hurt IPC on
 *  this memory-bound kernel. */
TEST(CoreConfigScaling, LargerRobHelpsMemoryBoundCode)
{
    const Program program = mixedProgram();
    double last_ipc = 0.0;
    for (const int rob : {16, 64, 192}) {
        SimConfig config = makeConfig(RunaheadConfig::kBaseline, false);
        config.warmupInstructions = 1'000;
        config.instructions = 10'000;
        config.core.robEntries = rob;
        Simulation sim(config, program);
        const double ipc = sim.run().ipc;
        EXPECT_GE(ipc, last_ipc * 0.95)
            << "ROB " << rob << " slower than smaller window";
        last_ipc = ipc;
    }
}

TEST(CoreConfigScaling, WiderMachineHelpsComputeCode)
{
    WorkloadParams p;
    p.name = "compute";
    p.family = WorkloadFamily::kCompute;
    p.workingSetBytes = 4 * 1024;
    p.aluPerIter = 12;
    p.fpPerIter = 4;
    const Program program = buildWorkload(p);
    double ipc1 = 0;
    double ipc4 = 0;
    for (const int width : {1, 4}) {
        SimConfig config = makeConfig(RunaheadConfig::kBaseline, false);
        config.warmupInstructions = 1'000;
        config.instructions = 10'000;
        config.core.fetchWidth = width;
        config.core.renameWidth = width;
        config.core.issueWidth = width;
        config.core.commitWidth = width;
        Simulation sim(config, program);
        (width == 1 ? ipc1 : ipc4) = sim.run().ipc;
    }
    EXPECT_GT(ipc4, ipc1 * 1.5);
    EXPECT_LE(ipc1, 1.01);
}

} // namespace
} // namespace rab
