/**
 * @file
 * Continuous Runahead engine certification.
 *
 * The load-bearing guarantee is compile-in invisibility: every
 * non-CRE configuration must be byte-identical — commit stream, cycle
 * count, full stat payload — whether the engine is absent (the normal
 * case: Core never instantiates it) or instantiated inert beside the
 * memory system (ChainEngineConfig::instantiateInert), clean and under
 * fault injection. Anything less would mean the engine's hooks in the
 * MemorySystem hot path leak timing or state into configurations that
 * never asked for it, invalidating every pinned baseline.
 *
 * The prefetch-only invariant is certified twice more: CRE's committed
 * architectural stream must equal its non-engine base config's (the
 * engine may only warm caches, never touch architectural state — the
 * invariant checker audits the same property structurally at
 * CheckLevel::kFull, which every test here runs under), and the
 * satellite namespacing fix is pinned by feeding a >= 2^48 demand
 * address through an attached-mode core.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/simulation.hh"
#include "memory/memory_system.hh"
#include "memory/shared_memory.hh"
#include "reference_interpreter.hh"
#include "workloads/suite.hh"

namespace rab
{
namespace
{

using test::RefCommit;

constexpr RunaheadConfig kNonEngineConfigs[] = {
    RunaheadConfig::kBaseline,         RunaheadConfig::kRunahead,
    RunaheadConfig::kRunaheadEnhanced, RunaheadConfig::kRunaheadBuffer,
    RunaheadConfig::kRunaheadBufferCC, RunaheadConfig::kHybrid,
};

/** Everything a differential pair compares. */
struct RunCapture
{
    std::vector<RefCommit> trace;
    std::map<std::string, double> stats;
    SimResult result;
};

SimConfig
makeTestConfig(RunaheadConfig rc, bool faulted)
{
    SimConfig config = makeConfig(rc, /*prefetch=*/false);
    config.warmupInstructions = 2'000;
    config.instructions = 12'000;
    config.checkLevel = CheckLevel::kFull;
    if (faulted) {
        config.checkPolicy = CheckPolicy::kDegrade;
        config.fault.enabled = true;
        config.fault.seed = 7;
        config.fault.chainCacheRate = 0.1;
        config.fault.bufferUopRate = 0.1;
    }
    config.finalize();
    return config;
}

RefCommit
captureCommit(const DynUop &uop)
{
    RefCommit c;
    c.pc = uop.pc;
    c.result = uop.sop.hasDest() || uop.isStore() ? uop.result : 0;
    c.addr = uop.sop.isMem() ? uop.effAddr : kNoAddr;
    c.taken = uop.isControl() && uop.actualTaken;
    return c;
}

RunCapture
runSolo(const SimConfig &config, const std::string &workload)
{
    Simulation sim(config, buildSuiteWorkload(workload));
    RunCapture cap;
    sim.core().setCommitHook([&](const DynUop &uop) {
        cap.trace.push_back(captureCommit(uop));
    });
    cap.result = sim.run();
    cap.stats = sim.core().stats().collect();
    const std::map<std::string, double> mem =
        sim.memory().stats().collect();
    cap.stats.insert(mem.begin(), mem.end());
    return cap;
}

void
expectIdentical(const RunCapture &a, const RunCapture &b,
                const std::string &label)
{
    ASSERT_EQ(a.result.cycles, b.result.cycles) << label;
    ASSERT_EQ(a.result.instructions, b.result.instructions) << label;

    ASSERT_EQ(a.trace.size(), b.trace.size()) << label;
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
        ASSERT_EQ(a.trace[i].pc, b.trace[i].pc)
            << label << " uop " << i;
        ASSERT_EQ(a.trace[i].result, b.trace[i].result)
            << label << " uop " << i << " pc " << a.trace[i].pc;
        ASSERT_EQ(a.trace[i].addr, b.trace[i].addr)
            << label << " uop " << i;
        ASSERT_EQ(a.trace[i].taken, b.trace[i].taken)
            << label << " uop " << i;
    }

    ASSERT_EQ(a.stats.size(), b.stats.size()) << label;
    for (const auto &[key, value] : b.stats) {
        const auto it = a.stats.find(key);
        ASSERT_TRUE(it != a.stats.end()) << label << " missing " << key;
        EXPECT_EQ(it->second, value) << label << " stat " << key;
    }
}

void
runInertDifferential(bool faulted)
{
    for (const RunaheadConfig rc : kNonEngineConfigs) {
        const SimConfig absent = makeTestConfig(rc, faulted);
        SimConfig inert = absent;
        // Instantiate the engine beside the memory system with every
        // hook live but config.enabled false: it must register no
        // stats, issue nothing, and perturb nothing.
        inert.core.runahead.engine.instantiateInert = true;
        const std::string label = std::string(runaheadConfigName(rc))
            + (faulted ? "+faults" : "");
        expectIdentical(runSolo(absent, "mcf"),
                        runSolo(inert, "mcf"), label);
    }
}

/** Non-CRE configs are byte-identical with the engine compiled in but
 *  disabled: commit stream, cycles, and the full stat payload. */
TEST(ChainEngine, InertEngineIsByteInvisible)
{
    runInertDifferential(/*faulted=*/false);
}

/** The same invisibility must hold with fault injection active. */
TEST(ChainEngine, InertEngineIsByteInvisibleUnderFaults)
{
    runInertDifferential(/*faulted=*/true);
}

/** Prefetch-only: CRE commits exactly what its non-engine base config
 *  commits (same architectural stream, uop for uop) — the engine may
 *  change timing but never architectural state. Runs under the full
 *  invariant checker, whose engine audit enforces the same property
 *  structurally every scan. */
TEST(ChainEngine, CreCommitStreamMatchesNonEngineBase)
{
    const RunCapture base = runSolo(
        makeTestConfig(RunaheadConfig::kRunaheadBufferCC, false), "mcf");
    const RunCapture cre =
        runSolo(makeTestConfig(RunaheadConfig::kCRE, false), "mcf");

    ASSERT_EQ(base.trace.size(), cre.trace.size());
    for (std::size_t i = 0; i < base.trace.size(); ++i) {
        ASSERT_EQ(base.trace[i].pc, cre.trace[i].pc) << " uop " << i;
        ASSERT_EQ(base.trace[i].result, cre.trace[i].result)
            << " uop " << i << " pc " << base.trace[i].pc;
        ASSERT_EQ(base.trace[i].addr, cre.trace[i].addr) << " uop " << i;
    }
}

/** CRE smoke on the memory-bound headline workload: chains get
 *  shipped, the engine loops them and issues prefetches, some arrive
 *  before the demand stream needs them, demand LLC misses drop versus
 *  the identical config without the engine, and the energy model
 *  charges the engine component. */
TEST(ChainEngine, CreEngineReducesDemandMissesOnMcf)
{
    const RunCapture base = runSolo(
        makeTestConfig(RunaheadConfig::kRunaheadBufferCC, false), "mcf");
    const RunCapture cre =
        runSolo(makeTestConfig(RunaheadConfig::kCRE, false), "mcf");

    ASSERT_TRUE(cre.stats.count("mem.engine.chains_shipped"));
    EXPECT_GT(cre.stats.at("mem.engine.chains_shipped"), 0.0);
    EXPECT_GT(cre.stats.at("mem.engine.iterations"), 0.0);
    EXPECT_GT(cre.stats.at("mem.engine.prefetches_issued"), 0.0);
    EXPECT_GT(cre.stats.at("mem.engine.prefetches_timely"), 0.0);

    // The engine subtree must not exist in the non-engine payload.
    EXPECT_EQ(base.stats.count("mem.engine.prefetches_issued"), 0u);

    EXPECT_LT(cre.stats.at("mem.llc_demand_misses"),
              base.stats.at("mem.llc_demand_misses"));

    EXPECT_GT(cre.result.energy.engineJ, 0.0);
    EXPECT_EQ(base.result.energy.engineJ, 0.0);
    EXPECT_GT(cre.result.energy.totalJ, 0.0);
}

/** CRE must be deterministic: two identical runs produce identical
 *  engine counters and cycle counts (the sweep store and canonical
 *  manifests depend on it). */
TEST(ChainEngine, CreIsDeterministic)
{
    const SimConfig config = makeTestConfig(RunaheadConfig::kCRE, false);
    const RunCapture a = runSolo(config, "mcf");
    const RunCapture b = runSolo(config, "mcf");
    expectIdentical(a, b, "cre-determinism");
}

/** Satellite regression: a demand address with bits at or above the
 *  core-namespacing boundary (>= 2^48) fed through an attached-mode
 *  core must be masked at the boundary — counted, not silently
 *  clamped into another core's slice by ownerOf. */
TEST(ChainEngine, HighBitDemandAddressMaskedInAttachedMode)
{
    SimConfig config = makeConfig(RunaheadConfig::kBaseline, false);
    config.finalize();

    SharedMemory shared(config.mem, 2);
    MemorySystem core0(config.mem, shared, 0);
    MemorySystem core1(config.mem, shared, 1);

    const Addr high = (Addr{1} << kCoreAddrShift) | 0x4'1000;
    core0.access(AccessType::kLoad, high, /*now=*/1);
    EXPECT_EQ(core0.addrHighMasked.value(), 1u);
    EXPECT_EQ(core1.addrHighMasked.value(), 0u);
    // The mask keeps every namespaced line decodable to a real core:
    // ownerOf never has to clamp.
    EXPECT_EQ(shared.ownerClamps.value(), 0u);

    // The masked access is the low alias: the same address without
    // the high bit now hits the line the first access filled (or at
    // worst merges with its in-flight miss) instead of missing in a
    // foreign slice.
    const AccessResult second =
        core0.access(AccessType::kLoad, 0x4'1000, /*now=*/1'000'000);
    EXPECT_FALSE(second.llcMiss);
}

} // namespace
} // namespace rab
