/**
 * @file
 * Unit tests: experiment/bench harness helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "core/experiment.hh"

namespace rab
{
namespace
{

TEST(Geomean, PlainValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 9.0}), 6.0);
    EXPECT_DOUBLE_EQ(geomean({5.0}), 5.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Geomean, SkipsNonPositiveValues)
{
    // Zeros and negatives (failed points) are excluded from the mean,
    // not clamped: the result over {4, 0, 9} is the mean of {4, 9}.
    EXPECT_DOUBLE_EQ(geomean({4.0, 0.0, 9.0}), 6.0);
    EXPECT_DOUBLE_EQ(geomean({-3.0, 5.0}), 5.0);
    // Nothing positive left: 0, never NaN or a clamped epsilon mean.
    EXPECT_DOUBLE_EQ(geomean({0.0, -1.0}), 0.0);
}

TEST(ResolveThreads, CliOverridesEnvOverridesHardware)
{
    ::setenv("RAB_THREADS", "3", 1);
    EXPECT_EQ(resolveThreads(5), 5); // explicit CLI value wins
    EXPECT_EQ(resolveThreads(0), 3); // then RAB_THREADS
    ::unsetenv("RAB_THREADS");
    EXPECT_GE(resolveThreads(0), 1); // then hardware, always >= 1
    // BenchOptions::fromEnv shares the same precedence chain.
    ::setenv("RAB_THREADS", "2", 1);
    EXPECT_EQ(BenchOptions::fromEnv().threads, 2);
    ::unsetenv("RAB_THREADS");
}

TEST(Geomean, SpeedupsMatchPaperConvention)
{
    // GMean of +10% and +10% is +10%.
    EXPECT_NEAR(geomeanSpeedup({0.10, 0.10}), 0.10, 1e-12);
    // A slowdown pulls the mean down through the ratio, not the diff.
    const double g = geomeanSpeedup({0.21, -0.10});
    EXPECT_NEAR(g, std::sqrt(1.21 * 0.90) - 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomeanSpeedup({}), 0.0);
}

TEST(TextTable, AlignsColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"a", "1"});
    table.addRow({"longer-name", "22"});
    const std::string s = table.toString();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("longer-name"), std::string::npos);
    // Header separator line exists.
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRow)
{
    TextTable table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "cells");
}

TEST(BenchOptions, ReadsEnvironment)
{
    ::setenv("RAB_INSTRUCTIONS", "1234", 1);
    ::setenv("RAB_WARMUP", "99", 1);
    ::setenv("RAB_WORKLOADS", "mcf,libq", 1);
    const BenchOptions options = BenchOptions::fromEnv(5, 6);
    EXPECT_EQ(options.instructions, 1234u);
    EXPECT_EQ(options.warmup, 99u);
    ASSERT_EQ(options.workloadFilter.size(), 2u);
    EXPECT_EQ(options.workloadFilter[0], "mcf");
    EXPECT_EQ(options.workloadFilter[1], "libq");
    ::unsetenv("RAB_INSTRUCTIONS");
    ::unsetenv("RAB_WARMUP");
    ::unsetenv("RAB_WORKLOADS");
    const BenchOptions defaults = BenchOptions::fromEnv(5, 6);
    EXPECT_EQ(defaults.instructions, 5u);
    EXPECT_EQ(defaults.warmup, 6u);
    EXPECT_TRUE(defaults.workloadFilter.empty());
}

TEST(SelectWorkloads, FiltersByName)
{
    const auto &all = spec06Suite();
    EXPECT_EQ(selectWorkloads(all, {}).size(), all.size());
    const auto some = selectWorkloads(all, {"mcf", "libq", "bogus"});
    ASSERT_EQ(some.size(), 2u);
    EXPECT_EQ(some[0].params.name, "libq"); // suite order preserved
    EXPECT_EQ(some[1].params.name, "mcf");
}

TEST(RunCell, ProducesResult)
{
    BenchOptions options;
    options.instructions = 2'000;
    options.warmup = 500;
    const WorkloadSpec *spec = findWorkload("mcf");
    ASSERT_NE(spec, nullptr);
    const SimResult r =
        runCell(*spec, RunaheadConfig::kBaseline, false, options);
    EXPECT_GE(r.instructions, 2'000u);
    EXPECT_EQ(r.workload, "mcf");
}

} // namespace
} // namespace rab
