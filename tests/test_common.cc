/**
 * @file
 * Unit tests: deterministic RNG and logging helpers.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "common/rng.hh"

namespace rab
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedRemapped)
{
    Rng rng(0);
    EXPECT_NE(rng.next(), 0u);
}

TEST(Rng, RangeBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.range(17), 17u);
}

TEST(Rng, RangeCoversAllValues)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.range(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectesProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng rng(5);
    const std::uint64_t first = rng.next();
    rng.next();
    rng.seed(5);
    EXPECT_EQ(rng.next(), first);
}

TEST(Logging, Strprintf)
{
    EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(strprintf("%llu", 18446744073709551615ull),
              "18446744073709551615");
    EXPECT_EQ(strprintf("plain"), "plain");
}

TEST(Logging, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 3), "boom 3");
}

} // namespace
} // namespace rab
