/**
 * @file
 * Unit tests: workload builders and the SPEC06-like suite.
 */

#include <gtest/gtest.h>

#include <set>

#include "isa/functional.hh"
#include "workloads/suite.hh"

namespace rab
{
namespace
{

TEST(Suite, HasTwentyNineWorkloads)
{
    EXPECT_EQ(spec06Suite().size(), 29u);
}

TEST(Suite, Table2Classification)
{
    // Table 2's groups.
    const std::set<std::string> high{"mcf",  "libq",   "bwaves",
                                     "lbm",  "sphinx", "omnetpp",
                                     "milc", "soplex", "leslie",
                                     "GemsFDTD"};
    const std::set<std::string> medium{"zeusmp", "cactus", "wrf"};
    int high_count = 0;
    int medium_count = 0;
    for (const WorkloadSpec &spec : spec06Suite()) {
        if (spec.intensity == MemIntensity::kHigh) {
            EXPECT_TRUE(high.count(spec.params.name))
                << spec.params.name;
            ++high_count;
        } else if (spec.intensity == MemIntensity::kMedium) {
            EXPECT_TRUE(medium.count(spec.params.name))
                << spec.params.name;
            ++medium_count;
        }
    }
    EXPECT_EQ(high_count, 10);
    EXPECT_EQ(medium_count, 3);
    EXPECT_EQ(mediumHighSuite().size(), 13u);
}

TEST(Suite, NamesUniqueAndFindable)
{
    std::set<std::string> names;
    for (const WorkloadSpec &spec : spec06Suite()) {
        EXPECT_TRUE(names.insert(spec.params.name).second)
            << "duplicate " << spec.params.name;
        EXPECT_EQ(findWorkload(spec.params.name), &spec);
    }
    EXPECT_EQ(findWorkload("nonexistent"), nullptr);
}

TEST(Suite, EveryProgramValidates)
{
    for (const WorkloadSpec &spec : spec06Suite()) {
        const Program p = buildWorkload(spec.params);
        EXPECT_FALSE(p.empty()) << spec.params.name;
        p.validate(); // panics on corruption
    }
}

TEST(Suite, BuildDeterministic)
{
    const Program a = buildSuiteWorkload("mcf");
    const Program b = buildSuiteWorkload("mcf");
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.disassemble(), b.disassemble());
}

TEST(Builders, GatherHasExpectedStructure)
{
    WorkloadParams p;
    p.family = WorkloadFamily::kGather;
    p.workingSetBytes = 1 << 20;
    p.depLoads = 1;
    p.aluPerIter = 2;
    const Program prog = buildWorkload(p);
    int loads = 0;
    int jumps = 0;
    for (Pc pc = 0; pc < prog.size(); ++pc) {
        loads += prog.at(pc).isLoad() ? 1 : 0;
        jumps += prog.at(pc).op == Opcode::kJump ? 1 : 0;
    }
    EXPECT_EQ(loads, 2); // primary + dependent
    EXPECT_EQ(jumps, 1);
}

TEST(Builders, ChainAluLengthensProgram)
{
    WorkloadParams p;
    p.family = WorkloadFamily::kGather;
    p.workingSetBytes = 1 << 20;
    const std::size_t short_len = buildWorkload(p).size();
    p.chainAlu = 10;
    EXPECT_EQ(buildWorkload(p).size(), short_len + 10);
}

TEST(Builders, PhasedGatherHasTwoInnerLoops)
{
    WorkloadParams p;
    p.family = WorkloadFamily::kGather;
    p.workingSetBytes = 1 << 20;
    p.memPhaseIters = 4;
    p.computePhaseIters = 8;
    const Program prog = buildWorkload(p);
    int branches = 0;
    for (Pc pc = 0; pc < prog.size(); ++pc)
        branches += prog.at(pc).op == Opcode::kBranch ? 1 : 0;
    EXPECT_GE(branches, 2); // memory-phase + compute-phase back edges
}

TEST(Builders, ChasePermutationIsALongCycle)
{
    WorkloadParams p;
    p.family = WorkloadFamily::kChase;
    p.workingSetBytes = 1 << 20; // 16384 nodes of 64 B
    const Program prog = buildWorkload(p);
    ASSERT_TRUE(prog.memoryImage());

    FunctionalMemory mem;
    mem.setBackground(prog.memoryImage());
    Addr cur = prog.initialReg(1);
    std::set<Addr> visited;
    for (int i = 0; i < 4000; ++i) {
        ASSERT_TRUE(visited.insert(cur).second)
            << "pointer cycle shorter than " << i;
        cur = mem.read(cur);
    }
}

TEST(Builders, SequentialChaseAdvancesByNodeBytes)
{
    WorkloadParams p;
    p.family = WorkloadFamily::kChase;
    p.workingSetBytes = 1 << 16;
    p.seqChase = true;
    p.strideBytes = 8;
    const Program prog = buildWorkload(p);
    FunctionalMemory mem;
    mem.setBackground(prog.memoryImage());
    const Addr start = prog.initialReg(1);
    EXPECT_EQ(mem.read(start), start + 8);
}

TEST(Builders, StrideUsesMultipleArrays)
{
    WorkloadParams p;
    p.family = WorkloadFamily::kStride;
    p.workingSetBytes = 1 << 20;
    p.numArrays = 3;
    const Program prog = buildWorkload(p);
    int loads = 0;
    for (Pc pc = 0; pc < prog.size(); ++pc)
        loads += prog.at(pc).isLoad() ? 1 : 0;
    EXPECT_EQ(loads, 3);
}

TEST(Builders, StreamStoresWhenRequested)
{
    WorkloadParams p;
    p.family = WorkloadFamily::kStream;
    p.workingSetBytes = 1 << 20;
    p.stores = true;
    const Program prog = buildWorkload(p);
    int stores = 0;
    for (Pc pc = 0; pc < prog.size(); ++pc)
        stores += prog.at(pc).isStore() ? 1 : 0;
    EXPECT_EQ(stores, 1);
}

TEST(Builders, BadWorkingSetFatal)
{
    WorkloadParams p;
    p.family = WorkloadFamily::kGather;
    p.workingSetBytes = 1000; // not a power of two
    EXPECT_DEATH(buildWorkload(p), "power of two");
}

} // namespace
} // namespace rab
