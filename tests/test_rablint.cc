/**
 * @file
 * Fixture-driven tests for the rablint determinism lint pass
 * (tools/rablint). Each check has a positive fixture (every line
 * marked `// EXPECT: <check>` must be flagged, and nothing else) and
 * a negative fixture (no findings at all, including annotated sites
 * that exercise the suppression grammar). A check regression —
 * a rule that stops firing or starts over-firing — fails here like
 * any other bug.
 */

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "rablint.hh"

namespace
{

using rab::lint::Finding;
using rab::lint::Options;

std::string
fixturePath(const std::string &name)
{
    return std::string(RABLINT_FIXTURE_DIR) + "/" + name;
}

/** (line, check) pairs declared by `// EXPECT: <check>` markers. */
std::set<std::pair<int, std::string>>
expectedFindings(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open fixture " << path;
    std::set<std::pair<int, std::string>> expected;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t pos = line.find("EXPECT: ");
        if (pos == std::string::npos)
            continue;
        std::istringstream rest(line.substr(pos + 8));
        std::string check;
        rest >> check;
        expected.emplace(lineno, check);
    }
    return expected;
}

std::set<std::pair<int, std::string>>
actualFindings(const std::string &path)
{
    std::set<std::pair<int, std::string>> actual;
    for (const Finding &f : rab::lint::analyzeFile(path, Options{}))
        actual.emplace(f.line, f.check);
    return actual;
}

class RablintFixture
  : public ::testing::TestWithParam<std::pair<const char *, const char *>>
{
};

TEST_P(RablintFixture, PositiveFixtureFlagsEveryMarkedLine)
{
    const auto [check, stem] = GetParam();
    const std::string path = fixturePath(std::string(stem) + "_pos.cc");
    const auto expected = expectedFindings(path);
    ASSERT_FALSE(expected.empty())
        << "positive fixture has no EXPECT markers: " << path;
    bool fired = false;
    for (const auto &[line, name] : expected)
        fired |= name == check;
    ASSERT_TRUE(fired)
        << "fixture never expects its own check: " << check;
    EXPECT_EQ(actualFindings(path), expected) << "fixture: " << path;
}

TEST_P(RablintFixture, NegativeFixtureStaysSilent)
{
    const auto [check, stem] = GetParam();
    (void)check;
    const std::string path = fixturePath(std::string(stem) + "_neg.cc");
    EXPECT_EQ(actualFindings(path),
              (std::set<std::pair<int, std::string>>{}))
        << "fixture: " << path;
}

INSTANTIATE_TEST_SUITE_P(
    AllChecks, RablintFixture,
    ::testing::Values(
        std::make_pair("rab-unordered-iteration", "unordered_iteration"),
        std::make_pair("rab-banned-nondeterminism", "nondeterminism"),
        std::make_pair("rab-banned-nondeterminism",
                       "nondeterminism_scoped"),
        std::make_pair("rab-cycle-arithmetic", "cycle_arithmetic"),
        std::make_pair("rab-stat-registration", "stat_registration"),
        std::make_pair("rab-raw-serialization", "raw_serialization")),
    [](const auto &info) {
        std::string name = info.param.second;
        for (char &c : name) {
            if (c == '_')
                c = '0';
        }
        return name;
    });

TEST(Rablint, ChecksOptionRestrictsToNamedChecks)
{
    Options only_cycle;
    only_cycle.checks = {"rab-cycle-arithmetic"};
    const std::string path = fixturePath("nondeterminism_pos.cc");
    EXPECT_TRUE(
        rab::lint::analyzeFile(path, only_cycle).empty());
}

TEST(Rablint, AllowlistSilencesNondeterminism)
{
    Options options;
    options.nondeterminismAllowlist = {"fixtures/nondeterminism_pos"};
    const std::string path = fixturePath("nondeterminism_pos.cc");
    for (const Finding &f : rab::lint::analyzeFile(path, options))
        EXPECT_NE(f.check, "rab-banned-nondeterminism") << f.message;
}

TEST(Rablint, ScopedAllowlistExemptsOnlyItsCategory)
{
    // `path=socket-io` must exempt the socket findings in the scoped
    // positive fixture while the wall-clock and entropy findings
    // (including the deliberately mis-scoped suppressions) survive.
    Options options;
    options.nondeterminismAllowlist = {
        "fixtures/nondeterminism_scoped_pos=socket-io"};
    const std::string path = fixturePath("nondeterminism_scoped_pos.cc");

    std::size_t nondet = 0;
    for (const Finding &f : rab::lint::analyzeFile(path, options)) {
        if (f.check != "rab-banned-nondeterminism")
            continue;
        ++nondet;
        EXPECT_EQ(f.message.find("socket I/O"), std::string::npos)
            << f.message;
    }
    // The fixture has 5 expected findings, 3 of them socket-io.
    EXPECT_EQ(nondet, 2u);

    // Scoping to a different category leaves all 5 armed.
    options.nondeterminismAllowlist = {
        "fixtures/nondeterminism_scoped_pos=pointer-key"};
    nondet = 0;
    for (const Finding &f : rab::lint::analyzeFile(path, options))
        nondet += f.check == "rab-banned-nondeterminism" ? 1 : 0;
    EXPECT_EQ(nondet, 5u);
}

TEST(Rablint, RawSerializationAllowlistExemptsFormatModules)
{
    // The snapshot archive and trace writer are the sanctioned
    // byte-format modules; an allowlisted path produces no
    // raw-serialization findings even at hazardous call sites.
    Options options;
    options.rawSerializationAllowlist = {"fixtures/raw_serialization_pos"};
    const std::string path = fixturePath("raw_serialization_pos.cc");
    for (const Finding &f : rab::lint::analyzeFile(path, options))
        EXPECT_NE(f.check, "rab-raw-serialization") << f.message;
}

TEST(Rablint, CrossFileAliasSeedsUnorderedIteration)
{
    // An alias declared "elsewhere" (the seed set) is recognized when
    // analyzing a file that only uses it — the project-wide mode the
    // CLI runs in.
    const std::string source = "std::uint64_t\n"
                               "sum(const PendingMap &pending)\n"
                               "{\n"
                               "    std::uint64_t total = 0;\n"
                               "    for (const auto &[a, c] : pending)\n"
                               "        total += c;\n"
                               "    return total;\n"
                               "}\n";
    const rab::lint::LexedFile lexed = rab::lint::lex(source);

    // Without the seed: nothing links `pending` to an unordered type.
    EXPECT_TRUE(
        rab::lint::analyze("mem.cc", lexed, Options{}, nullptr).empty());

    rab::lint::UnorderedNames global;
    global.aliases.insert("PendingMap");
    const auto findings =
        rab::lint::analyze("mem.cc", lexed, Options{}, &global);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].check, "rab-unordered-iteration");
    EXPECT_EQ(findings[0].line, 5);
}

} // namespace
