/**
 * @file
 * Unit tests: parallel sweep engine, JSON manifests, perf gate.
 *
 * The load-bearing guarantees certified here:
 *  - parallel execution equals serial execution byte for byte across
 *    thread counts {1, 2, 8} (canonical manifests compared as raw
 *    strings);
 *  - one point dying via WatchdogTimeout does not take the campaign
 *    down — it is marked failed, everything else completes;
 *  - the manifest schema round-trips through the JSON parser
 *    byte-identically.
 */

#include <gtest/gtest.h>

#include <set>

#include "sweep/campaign.hh"
#include "sweep/report.hh"

namespace rab
{
namespace
{

/** A small but non-trivial grid (2 workloads x 3 variants). */
CampaignSpec
smallSpec()
{
    CampaignSpec spec;
    spec.name = "test-grid";
    spec.workloads = {"mcf", "libq"};
    spec.variants = {makeVariant(RunaheadConfig::kBaseline, false),
                     makeVariant(RunaheadConfig::kHybrid, false),
                     makeVariant(RunaheadConfig::kHybrid, true)};
    spec.instructions = 2'000;
    spec.warmup = 500;
    return spec;
}

TEST(ExpandGrid, DeterministicGridOrder)
{
    CampaignSpec spec = smallSpec();
    spec.seeds = {0, 7};
    const auto points = expandGrid(spec);
    ASSERT_EQ(points.size(), spec.pointCount());
    ASSERT_EQ(points.size(), 2u * 3u * 2u);
    // Workload-major, then variant, then seed; indices sequential.
    EXPECT_EQ(points[0].workload, "mcf");
    EXPECT_EQ(points[0].variant, "Baseline");
    EXPECT_EQ(points[0].seed, 0u);
    EXPECT_EQ(points[1].seed, 7u);
    EXPECT_EQ(points[2].variant, "Hybrid");
    EXPECT_EQ(points[4].variant, "Hybrid+PF");
    EXPECT_EQ(points[6].workload, "libq");
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(points[i].index, i);
}

TEST(Campaign, ParallelEqualsSerialByteForByte)
{
    const CampaignSpec spec = smallSpec();
    const CampaignResult serial = runCampaign(spec, 1);
    ASSERT_EQ(serial.failedCount(), 0u);
    const std::string reference =
        campaignManifest(serial, /*canonical=*/true).dump();
    for (const int threads : {2, 8}) {
        const CampaignResult parallel = runCampaign(spec, threads);
        EXPECT_EQ(campaignManifest(parallel, /*canonical=*/true).dump(),
                  reference)
            << "thread count " << threads
            << " changed the merged output";
    }
}

TEST(Campaign, FaultIsolation)
{
    CampaignSpec spec;
    spec.name = "fault-isolation";
    spec.workloads = {"mcf"};
    spec.variants = {makeVariant(RunaheadConfig::kBaseline, false),
                     makeVariant(RunaheadConfig::kHybrid, false),
                     makeVariant(RunaheadConfig::kHybrid, true)};
    spec.instructions = 5'000;
    spec.warmup = 1'000;
    // Point 1 loses every DRAM response: its watchdog exhausts the
    // recovery budget and throws WatchdogTimeout inside the worker.
    spec.configHook = [](std::size_t index, SimConfig &config) {
        if (index == 1) {
            config.fault.enabled = true;
            config.fault.dramDropRate = 1.0;
            config.core.watchdog.cycles = 2'000;
        }
    };

    for (const int threads : {1, 4}) {
        const CampaignResult campaign = runCampaign(spec, threads);
        ASSERT_EQ(campaign.points.size(), 3u);
        EXPECT_TRUE(campaign.points[0].ok);
        EXPECT_TRUE(campaign.points[2].ok);
        ASSERT_FALSE(campaign.points[1].ok);
        EXPECT_NE(campaign.points[1].error.find("WatchdogTimeout"),
                  std::string::npos)
            << campaign.points[1].error;
        EXPECT_EQ(campaign.failedCount(), 1u);
        // The failed point still appears in the manifest, marked so.
        const Json manifest = campaignManifest(campaign, true);
        EXPECT_FALSE(manifest.at("points").at(1).at("ok").asBool());
        EXPECT_EQ(manifest.at("campaign").at("failed_points").asU64(),
                  1u);
    }
}

TEST(Campaign, MoreThreadsThanPoints)
{
    CampaignSpec spec = smallSpec();
    spec.workloads = {"mcf"};
    spec.variants = {makeVariant(RunaheadConfig::kBaseline, false)};
    const CampaignResult campaign = runCampaign(spec, 16);
    ASSERT_EQ(campaign.points.size(), 1u);
    EXPECT_TRUE(campaign.points[0].ok);
    EXPECT_GT(campaign.points[0].result.ipc, 0.0);
}

TEST(Manifest, SchemaRoundTrip)
{
    const CampaignResult campaign = runCampaign(smallSpec(), 2);
    const Json manifest = campaignManifest(campaign, false);
    const std::string text = manifest.dump();

    // parse(dump(x)).dump() == dump(x): the schema survives a full
    // round trip byte-identically.
    const Json reparsed = Json::parse(text);
    EXPECT_EQ(reparsed.dump(), text);

    // Schema contract spot checks.
    EXPECT_EQ(reparsed.at("schema").asString(), kSweepManifestSchema);
    const Json &grid = reparsed.at("campaign");
    EXPECT_EQ(grid.at("name").asString(), "test-grid");
    EXPECT_EQ(grid.at("points").asU64(), campaign.points.size());
    const Json &env = reparsed.at("environment");
    EXPECT_GT(env.at("wall_seconds").asDouble(), 0.0);
    EXPECT_FALSE(env.at("git_sha").asString().empty());
    const Json &points = reparsed.at("points");
    ASSERT_EQ(points.size(), campaign.points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Json &p = points.at(i);
        EXPECT_EQ(p.at("index").asU64(), i);
        EXPECT_TRUE(p.at("ok").asBool());
        EXPECT_GT(p.at("metrics").at("ipc").asDouble(), 0.0);
        EXPECT_GT(p.at("metrics").at("cycles").asU64(), 0u);
        // The flattened StatGroup payload rides along per point.
        EXPECT_GT(p.at("stats").size(), 10u);
    }

    // Canonical mode drops every volatile field.
    const Json canonical =
        Json::parse(campaignManifest(campaign, true).dump());
    EXPECT_EQ(canonical.find("environment"), nullptr);
    EXPECT_EQ(canonical.at("points").at(0).find("wall_seconds"),
              nullptr);
}

TEST(Json, ValueRoundTrips)
{
    Json obj = Json::object();
    obj["s"] = "quote\" backslash\\ newline\n tab\t";
    obj["i"] = std::uint64_t{123456789};
    obj["f"] = 0.1;
    obj["neg"] = -2.5;
    obj["t"] = true;
    obj["n"] = Json();
    Json arr = Json::array();
    arr.push(1);
    arr.push("two");
    arr.push(Json::object());
    obj["a"] = std::move(arr);

    const std::string text = obj.dump();
    const Json back = Json::parse(text);
    EXPECT_EQ(back.dump(), text);
    EXPECT_EQ(back.at("s").asString(),
              "quote\" backslash\\ newline\n tab\t");
    EXPECT_EQ(back.at("i").asU64(), 123456789u);
    EXPECT_DOUBLE_EQ(back.at("f").asDouble(), 0.1);
    EXPECT_TRUE(back.at("t").asBool());
    EXPECT_TRUE(back.at("n").isNull());
    EXPECT_EQ(back.at("a").size(), 3u);
}

TEST(Json, ParseErrors)
{
    EXPECT_THROW(Json::parse("{"), JsonError);
    EXPECT_THROW(Json::parse("[1,]"), JsonError);
    EXPECT_THROW(Json::parse("{\"a\": }"), JsonError);
    EXPECT_THROW(Json::parse("12 34"), JsonError);
    EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
    EXPECT_THROW(Json::parse("nope"), JsonError);
}

TEST(Json, KeyOrderIsInsertionOrder)
{
    Json obj = Json::object();
    obj["zebra"] = 1;
    obj["alpha"] = 2;
    const std::string text = obj.dump();
    EXPECT_LT(text.find("zebra"), text.find("alpha"));
}

TEST(PerfGate, PassesAndFails)
{
    const CampaignResult campaign = runCampaign(smallSpec(), 2);
    ASSERT_EQ(campaign.failedCount(), 0u);
    const double measured = campaignCyclesPerSecond(campaign);
    ASSERT_GT(measured, 0.0);

    Json baseline = makeBaseline(campaign);
    EXPECT_EQ(baseline.at("schema").asString(), kSweepBaselineSchema);

    // Same-speed baseline: no drop, passes.
    EXPECT_TRUE(perfGate(campaign, baseline, 0.25).pass);

    // Baseline 10x faster than measured: >25% drop, fails.
    baseline["cycles_per_wall_second"] = measured * 10.0;
    const GateResult fail = perfGate(campaign, baseline, 0.25);
    EXPECT_FALSE(fail.pass);
    EXPECT_GT(fail.drop, 0.25);

    // Baseline slower than measured: improvement, passes.
    baseline["cycles_per_wall_second"] = measured / 10.0;
    EXPECT_TRUE(perfGate(campaign, baseline, 0.25).pass);

    // Malformed baseline fails closed.
    EXPECT_FALSE(perfGate(campaign, Json::object(), 0.25).pass);
}

TEST(PerfGate, FailedPointsFailTheGate)
{
    CampaignSpec spec = smallSpec();
    spec.workloads = {"does-not-exist"};
    const CampaignResult campaign = runCampaign(spec, 1);
    ASSERT_EQ(campaign.failedCount(), campaign.points.size());
    const CampaignResult good = runCampaign(smallSpec(), 1);
    const GateResult gate =
        perfGate(campaign, makeBaseline(good), 0.25);
    EXPECT_FALSE(gate.pass);
    EXPECT_NE(gate.message.find("failed"), std::string::npos);
}

TEST(PerfGate, ExitCodePrecedence)
{
    // rabsweep's exit contract: interruption (7) dominates everything
    // — a partial manifest must never be gated or promoted to a
    // baseline — and a failed gate (6) outranks failed points (5),
    // matching the historical batch behaviour (the gate itself fails
    // when points failed).
    EXPECT_EQ(resolveSweepExitCode(false, false, false), 0);
    EXPECT_EQ(resolveSweepExitCode(false, true, false), 5);
    EXPECT_EQ(resolveSweepExitCode(false, false, true), 6);
    EXPECT_EQ(resolveSweepExitCode(false, true, true), 6);
    EXPECT_EQ(resolveSweepExitCode(true, false, false), 7);
    EXPECT_EQ(resolveSweepExitCode(true, true, false), 7);
    EXPECT_EQ(resolveSweepExitCode(true, false, true), 7);
    EXPECT_EQ(resolveSweepExitCode(true, true, true), 7);
}

TEST(Campaign, MixPointsCarryChipEnergy)
{
    // Multi-core mix points must report chip-level energy in the
    // manifest (a MultiSimulation point used to leave energy_total_j
    // at zero), and the payload must be deterministic. The once-per-
    // chip static-power accounting itself is certified in
    // test_multicore, where the per-core breakdowns are visible.
    CampaignSpec spec;
    spec.name = "mix-energy";
    spec.mixes = {{"duo", {"mcf", "libq"}}};
    spec.variants = {makeVariant(RunaheadConfig::kBaseline, false),
                     makeVariant(RunaheadConfig::kHybrid, false)};
    spec.instructions = 2'000;
    spec.warmup = 500;

    const CampaignResult a = runCampaign(spec, 2);
    ASSERT_EQ(a.failedCount(), 0u);
    for (const PointResult &pr : a.points) {
        EXPECT_GT(pr.result.energy.totalJ, 0.0) << pr.point.variant;
        EXPECT_GT(pr.result.energy.dramJ, 0.0) << pr.point.variant;
        ASSERT_TRUE(pr.stats.count("shared.energy.total_j"))
            << pr.point.variant;
        EXPECT_EQ(pr.stats.at("shared.energy.total_j"),
                  pr.result.energy.totalJ)
            << pr.point.variant;
        EXPECT_TRUE(pr.stats.count("shared.energy.dram_j"))
            << pr.point.variant;
        EXPECT_TRUE(pr.stats.count("shared.energy.leakage_j"))
            << pr.point.variant;
    }

    // The manifest serialises it, byte-identically across runs.
    const Json manifest = campaignManifest(a, /*canonical=*/true);
    EXPECT_GT(manifest.at("points").at(0).at("metrics")
                  .at("energy_total_j").asDouble(),
              0.0);
    const CampaignResult b = runCampaign(spec, 1);
    EXPECT_EQ(campaignManifest(b, true).dump(), manifest.dump());
}

TEST(Campaign, SeedsVaryTheWorkload)
{
    CampaignSpec spec;
    spec.name = "seeds";
    spec.workloads = {"mcf"};
    spec.variants = {makeVariant(RunaheadConfig::kBaseline, false)};
    spec.seeds = {1, 2};
    spec.instructions = 2'000;
    spec.warmup = 500;
    const CampaignResult campaign = runCampaign(spec, 2);
    ASSERT_EQ(campaign.points.size(), 2u);
    ASSERT_TRUE(campaign.points[0].ok);
    ASSERT_TRUE(campaign.points[1].ok);
    // Different seeds give different dynamic behaviour (cycle counts);
    // identical seeds would defeat the seed axis.
    EXPECT_NE(campaign.points[0].result.cycles,
              campaign.points[1].result.cycles);
}

TEST(Merge, DisjointManifestsReassembleTheFullGrid)
{
    // Split smallSpec's grid by workload, run each half, and merge:
    // the result must be byte-identical to the full-grid canonical
    // manifest — indices rewritten, axes unioned, counters recomputed.
    const CampaignSpec full = smallSpec();
    const std::string reference =
        campaignManifest(runCampaign(full, 2), /*canonical=*/true)
            .dump();

    CampaignSpec mcf = full;
    mcf.workloads = {"mcf"};
    CampaignSpec libq = full;
    libq.workloads = {"libq"};
    const Json merged = mergeManifests(
        campaignManifest(runCampaign(mcf, 2), /*canonical=*/true),
        campaignManifest(runCampaign(libq, 2), /*canonical=*/true));
    EXPECT_EQ(merged.dump(), reference);
}

TEST(Merge, RejectsDuplicatePointKeys)
{
    // Merging a manifest with itself collides on every
    // (workload, variant, seed) key; a silent last-writer-wins here
    // would corrupt resumed campaigns, so it must throw.
    CampaignSpec spec = smallSpec();
    spec.workloads = {"mcf"};
    const Json manifest =
        campaignManifest(runCampaign(spec, 1), /*canonical=*/true);
    try {
        mergeManifests(manifest, manifest);
        FAIL() << "duplicate point keys were merged silently";
    } catch (const JsonError &e) {
        EXPECT_NE(std::string(e.what()).find("duplicate point key"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Merge, RejectsSchemaMismatch)
{
    CampaignSpec spec = smallSpec();
    spec.workloads = {"mcf"};
    const Json manifest =
        campaignManifest(runCampaign(spec, 1), /*canonical=*/true);

    Json wrong = manifest;
    wrong["schema"] = "rab-sweep-manifest-v999";
    try {
        mergeManifests(manifest, wrong);
        FAIL() << "mismatched manifest schema merged silently";
    } catch (const JsonError &e) {
        const std::string what = e.what();
        // The error must name the offending side and both schemas.
        EXPECT_NE(what.find("rab-sweep-manifest-v999"),
                  std::string::npos) << what;
        EXPECT_NE(what.find("right"), std::string::npos) << what;
    }

    Json missing = manifest;
    missing["schema"] = Json(); // Not even a string.
    EXPECT_THROW(mergeManifests(missing, manifest), JsonError);
}

} // namespace
} // namespace rab
