/**
 * @file
 * Unit tests: composed memory hierarchy (L1 + LLC + queue + DRAM).
 */

#include <gtest/gtest.h>

#include "memory/memory_system.hh"

namespace rab
{
namespace
{

MemSysConfig
config()
{
    return MemSysConfig{};
}

TEST(MemorySystem, L1HitLatency)
{
    MemorySystem mem(config());
    const AccessResult miss = mem.access(AccessType::kLoad, 0x1000, 0);
    EXPECT_TRUE(miss.l1Miss);
    EXPECT_TRUE(miss.llcMiss);
    // After the fill completes, the line hits in L1 at L1 latency.
    const Cycle later = miss.readyCycle + 1;
    const AccessResult hit =
        mem.access(AccessType::kLoad, 0x1000, later);
    EXPECT_FALSE(hit.l1Miss);
    EXPECT_EQ(hit.readyCycle,
              later + mem.config().l1d.latency);
}

TEST(MemorySystem, LlcHitAfterL1Eviction)
{
    MemorySystem mem(config());
    const AccessResult first = mem.access(AccessType::kLoad, 0x0, 0);
    const Cycle t = first.readyCycle + 1;
    // Evict line 0 from the 32 KB 8-way L1 by filling its set: L1 set
    // stride is 4 KB.
    Cycle now = t;
    for (int i = 1; i <= 8; ++i) {
        const AccessResult r = mem.access(
            AccessType::kLoad, static_cast<Addr>(i) * 4096, now);
        now = std::max(now, r.readyCycle) + 1;
    }
    const AccessResult back = mem.access(AccessType::kLoad, 0x0, now);
    EXPECT_TRUE(back.l1Miss);
    EXPECT_FALSE(back.llcMiss); // still resident in the inclusive LLC
    EXPECT_EQ(back.readyCycle, now + mem.config().l1d.latency
                                   + mem.config().llc.latency);
}

TEST(MemorySystem, MshrMergeSharesInFlightFill)
{
    MemorySystem mem(config());
    const AccessResult a = mem.access(AccessType::kLoad, 0x2000, 0);
    ASSERT_TRUE(a.llcMiss);
    const AccessResult b = mem.access(AccessType::kLoad, 0x2008, 1);
    EXPECT_FALSE(b.llcMiss);       // merged, not a new miss
    EXPECT_TRUE(b.pendingMiss);    // but it waits on one
    EXPECT_EQ(b.readyCycle, a.readyCycle);
    EXPECT_EQ(mem.dram().reads.value(), 1u);
}

TEST(MemorySystem, MemQueueLimitRejects)
{
    MemSysConfig cfg = config();
    cfg.memQueueEntries = 4;
    MemorySystem mem(cfg);
    int accepted = 0;
    int rejected = 0;
    for (int i = 0; i < 8; ++i) {
        const AccessResult r = mem.access(
            AccessType::kLoad, static_cast<Addr>(i) * 64, 0);
        (r.rejected ? rejected : accepted)++;
    }
    EXPECT_EQ(accepted, 4);
    EXPECT_EQ(rejected, 4);
    EXPECT_EQ(mem.queueRejects.value(), 4u);
}

TEST(MemorySystem, RunaheadReservationLeavesDemandRoom)
{
    MemSysConfig cfg = config();
    cfg.memQueueEntries = 8;
    cfg.runaheadQueueReserve = 4;
    MemorySystem mem(cfg);
    // Runahead may take only 4 of the 8 slots.
    int accepted = 0;
    for (int i = 0; i < 8; ++i) {
        if (!mem.access(AccessType::kLoad, static_cast<Addr>(i) * 64, 0,
                        /*runahead=*/true)
                 .rejected) {
            ++accepted;
        }
    }
    EXPECT_EQ(accepted, 4);
    // Demand can still use the rest.
    EXPECT_FALSE(mem.access(AccessType::kLoad, 0x9000, 0).rejected);
}

TEST(MemorySystem, OutstandingMissesDrain)
{
    MemorySystem mem(config());
    const AccessResult r = mem.access(AccessType::kLoad, 0x3000, 0);
    EXPECT_EQ(mem.outstandingMisses(1), 1u);
    EXPECT_EQ(mem.outstandingMisses(r.readyCycle), 0u);
}

TEST(MemorySystem, DataOnChipTracksFill)
{
    MemorySystem mem(config());
    EXPECT_FALSE(mem.dataOnChip(0x4000, 0));
    const AccessResult r = mem.access(AccessType::kLoad, 0x4000, 0);
    EXPECT_FALSE(mem.dataOnChip(0x4000, 1)); // fill in flight
    EXPECT_TRUE(mem.missInFlight(0x4000, 1));
    EXPECT_TRUE(mem.dataOnChip(0x4000, r.readyCycle));
}

TEST(MemorySystem, StoreMissCountsAsDemandMiss)
{
    MemorySystem mem(config());
    mem.access(AccessType::kStore, 0x5000, 0);
    EXPECT_EQ(mem.llcDemandMisses.value(), 1u);
    EXPECT_EQ(mem.llcLoadMisses.value(), 0u);
    EXPECT_EQ(mem.demandStores.value(), 1u);
}

TEST(MemorySystem, DirtyLlcEvictionWritesBack)
{
    MemorySystem mem(config());
    // Dirty a line, then stream enough lines through its LLC set to
    // evict it. LLC: 1 MB 8-way, 2048 sets -> set stride 128 KB.
    Cycle now = 0;
    const AccessResult w = mem.access(AccessType::kStore, 0x0, now);
    now = w.readyCycle + 1;
    for (int i = 1; i <= 8; ++i) {
        const AccessResult r = mem.access(
            AccessType::kLoad, static_cast<Addr>(i) * 128 * 1024, now);
        now = r.readyCycle + 1;
    }
    EXPECT_GE(mem.dram().writes.value(), 1u);
    // Inclusive: the dirty line must also be gone from the L1.
    const AccessResult back = mem.access(AccessType::kLoad, 0x0, now);
    EXPECT_TRUE(back.llcMiss);
}

TEST(MemorySystem, PrefetcherFillsAhead)
{
    MemSysConfig cfg = config();
    cfg.prefetcher.enabled = true;
    MemorySystem mem(cfg);
    // A clean ascending stream of demand misses trains the prefetcher.
    Cycle now = 0;
    for (int i = 0; i < 12; ++i) {
        const AccessResult r = mem.access(
            AccessType::kLoad, static_cast<Addr>(i) * 64, now);
        now = std::max(now + 1, r.readyCycle);
    }
    EXPECT_GT(mem.prefetchesIssued.value(), 0u);
    // Lines ahead of the stream should now be resident or in flight.
    EXPECT_TRUE(mem.llc().probe(13 * 64) || mem.missInFlight(13 * 64, now));
}

} // namespace
} // namespace rab
