/**
 * @file
 * In-order functional reference interpreter used for differential
 * testing: the out-of-order core's committed instruction stream (PCs,
 * results, addresses, architectural state) must match this simple
 * model exactly, on every workload and under every runahead
 * configuration (runahead is microarchitectural speculation only — it
 * must never change architectural results).
 */

#ifndef RAB_TESTS_REFERENCE_INTERPRETER_HH
#define RAB_TESTS_REFERENCE_INTERPRETER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/functional.hh"
#include "isa/program.hh"

namespace rab::test
{

/** One retired uop in the reference stream. */
struct RefCommit
{
    Pc pc = 0;
    std::uint64_t result = 0; ///< Dest value / store data; 0 otherwise.
    Addr addr = kNoAddr;      ///< Memory uops only.
    bool taken = false;       ///< Control uops only.
};

/** The reference machine. */
class ReferenceInterpreter
{
  public:
    explicit ReferenceInterpreter(const Program &program)
        : program_(program)
    {
        regs_.fill(0);
        for (ArchReg r = 0; r < kNumArchRegs; ++r)
            regs_[r] = program.initialReg(r);
        if (program.memoryImage())
            mem_.setBackground(program.memoryImage());
    }

    /** Execute one uop; returns its commit record. */
    RefCommit
    step()
    {
        const Uop &uop = program_.fetch(pc_);
        const std::uint64_t v1 =
            uop.src1 != kNoArchReg ? regs_[uop.src1] : 0;
        const std::uint64_t v2 =
            uop.src2 != kNoArchReg ? regs_[uop.src2] : 0;

        RefCommit commit;
        commit.pc = pc_ % program_.size();
        Pc next = commit.pc + 1;
        switch (uop.op) {
          case Opcode::kNop:
            break;
          case Opcode::kLoad:
            commit.addr = effectiveAddr(uop, v1);
            commit.result = mem_.read(commit.addr);
            regs_[uop.dest] = commit.result;
            break;
          case Opcode::kStore:
            commit.addr = effectiveAddr(uop, v1);
            commit.result = v2;
            mem_.write(commit.addr, v2);
            break;
          case Opcode::kBranch:
            commit.taken = evalBranch(uop, v1, v2);
            if (commit.taken)
                next = uop.target;
            break;
          case Opcode::kJump:
            commit.taken = true;
            next = uop.target;
            break;
          default:
            commit.result = evalAlu(uop, v1, v2);
            regs_[uop.dest] = commit.result;
            break;
        }
        pc_ = next % program_.size();
        return commit;
    }

    /** Execute @p n uops and return the commit trace. */
    std::vector<RefCommit>
    run(std::uint64_t n)
    {
        std::vector<RefCommit> trace;
        trace.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i)
            trace.push_back(step());
        return trace;
    }

    std::uint64_t reg(ArchReg r) const { return regs_[r]; }
    Pc pc() const { return pc_; }

  private:
    const Program &program_;
    std::array<std::uint64_t, kNumArchRegs> regs_{};
    FunctionalMemory mem_;
    Pc pc_ = 0;
};

} // namespace rab::test

#endif // RAB_TESTS_REFERENCE_INTERPRETER_HH
