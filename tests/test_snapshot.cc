/**
 * @file
 * Snapshot certification: capturing a simulation at the warmup
 * boundary and restoring it — in-process or through the CRC-framed
 * file format — must be invisible in every architectural and
 * statistical observable. For all six runahead configurations, and
 * again under speculative fault injection, a restore-resumed run must
 * produce a byte-identical commit stream, identical cycle count and an
 * identical full statistics payload (core + memory) compared to the
 * straight-line run that never snapshotted.
 *
 * Also certifies the failure surface: truncated, bit-flipped,
 * wrong-magic and wrong-version files are rejected with the right
 * structured SnapshotErrorKind, and mode gates (config digest, workload
 * identity, fork safety) refuse mismatched restores instead of
 * silently diverging.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/simulation.hh"
#include "reference_interpreter.hh"
#include "snapshot/snapshot.hh"
#include "sweep/campaign.hh"
#include "sweep/report.hh"
#include "sweep/store/result_store.hh"
#include "workloads/suite.hh"

namespace fs = std::filesystem;

namespace rab
{
namespace
{

using test::RefCommit;

constexpr RunaheadConfig kAllConfigs[] = {
    RunaheadConfig::kBaseline,         RunaheadConfig::kRunahead,
    RunaheadConfig::kRunaheadEnhanced, RunaheadConfig::kRunaheadBuffer,
    RunaheadConfig::kRunaheadBufferCC, RunaheadConfig::kHybrid,
};

SimConfig
makeTestConfig(RunaheadConfig rc, bool faulted)
{
    SimConfig config = makeConfig(rc, /*prefetch=*/false);
    config.warmupInstructions = 2'000;
    config.instructions = 15'000;
    config.checkLevel = CheckLevel::kFull;
    if (faulted) {
        config.checkPolicy = CheckPolicy::kDegrade;
        config.fault.enabled = true;
        config.fault.seed = 7;
        config.fault.chainCacheRate = 0.1;
        config.fault.bufferUopRate = 0.1;
    }
    config.finalize();
    return config;
}

/** Everything a differential pair compares. */
struct RunCapture
{
    std::vector<RefCommit> trace;
    std::map<std::string, double> stats;
    std::uint64_t cycles = 0;
};

void
hookCommits(Simulation &sim, RunCapture &cap)
{
    sim.core().setCommitHook([&cap](const DynUop &uop) {
        RefCommit c;
        c.pc = uop.pc;
        c.result = uop.sop.hasDest() || uop.isStore() ? uop.result : 0;
        c.addr = uop.sop.isMem() ? uop.effAddr : kNoAddr;
        c.taken = uop.isControl() && uop.actualTaken;
        cap.trace.push_back(c);
    });
}

void
collectStats(Simulation &sim, RunCapture &cap)
{
    cap.stats = sim.core().stats().collect();
    const std::map<std::string, double> mem =
        sim.memory().stats().collect();
    cap.stats.insert(mem.begin(), mem.end());
}

/** The reference arm: warmup and measured region in one simulation,
 *  commit hook armed for the measured region only. */
RunCapture
runStraight(const SimConfig &config)
{
    Simulation sim(config, buildSuiteWorkload("mcf"));
    sim.runWarmup();
    RunCapture cap;
    hookCommits(sim, cap);
    cap.cycles = sim.runMeasured().cycles;
    collectStats(sim, cap);
    return cap;
}

void
expectIdentical(const RunCapture &snap, const RunCapture &straight,
                RunaheadConfig rc)
{
    const char *name = runaheadConfigName(rc);
    ASSERT_EQ(snap.cycles, straight.cycles) << name;

    ASSERT_EQ(snap.trace.size(), straight.trace.size()) << name;
    for (std::size_t i = 0; i < snap.trace.size(); ++i) {
        ASSERT_EQ(snap.trace[i].pc, straight.trace[i].pc)
            << name << " uop " << i;
        ASSERT_EQ(snap.trace[i].result, straight.trace[i].result)
            << name << " uop " << i << " pc " << snap.trace[i].pc;
        ASSERT_EQ(snap.trace[i].addr, straight.trace[i].addr)
            << name << " uop " << i;
        ASSERT_EQ(snap.trace[i].taken, straight.trace[i].taken)
            << name << " uop " << i;
    }

    ASSERT_EQ(snap.stats.size(), straight.stats.size()) << name;
    for (const auto &[key, value] : straight.stats) {
        const auto it = snap.stats.find(key);
        ASSERT_TRUE(it != snap.stats.end())
            << name << " missing " << key;
        EXPECT_EQ(it->second, value) << name << " stat " << key;
    }
}

/** The snapshot arm: warmup in one simulation, capture, restore into a
 *  FRESH simulation, resume there. Also asserts the restored state
 *  re-captures to the byte-identical payload. */
RunCapture
runViaSnapshot(const SimConfig &config)
{
    std::string payload;
    {
        Simulation warm(config, buildSuiteWorkload("mcf"));
        warm.runWarmup();
        payload = captureSnapshot(warm);
    }

    Simulation sim(config, buildSuiteWorkload("mcf"));
    restoreSnapshot(sim, payload, SnapshotRestoreMode::kExact);
    // Round-trip fixpoint: restored state re-captures byte-identically.
    EXPECT_EQ(captureSnapshot(sim), payload);

    RunCapture cap;
    hookCommits(sim, cap);
    cap.cycles = sim.runMeasured().cycles;
    collectStats(sim, cap);
    return cap;
}

TEST(Snapshot, ExactRestoreMatchesStraightLineAllConfigs)
{
    for (const RunaheadConfig rc : kAllConfigs) {
        const SimConfig config = makeTestConfig(rc, false);
        expectIdentical(runViaSnapshot(config), runStraight(config),
                        rc);
    }
}

TEST(Snapshot, ExactRestoreMatchesStraightLineUnderFaults)
{
    for (const RunaheadConfig rc : kAllConfigs) {
        const SimConfig config = makeTestConfig(rc, true);
        expectIdentical(runViaSnapshot(config), runStraight(config),
                        rc);
    }
}

TEST(Snapshot, MetaDescribesCapturePoint)
{
    const SimConfig config =
        makeTestConfig(RunaheadConfig::kBaseline, false);
    Simulation sim(config, buildSuiteWorkload("mcf"));
    sim.runWarmup();
    const std::string payload = captureSnapshot(sim);

    const SnapshotMeta meta = peekSnapshotMeta(payload);
    EXPECT_EQ(meta.formatVersion, kSnapshotFormatVersion);
    EXPECT_EQ(meta.workload, "mcf");
    EXPECT_EQ(meta.configDigest, snapshotConfigDigest(config));
    EXPECT_EQ(meta.warmupDigest, snapshotWarmupDigest(config));
    EXPECT_TRUE(meta.forkSafe); // Baseline warmup: no runahead at all.
    EXPECT_FALSE(meta.faultPresent);
    EXPECT_FALSE(meta.enginePresent);
    EXPECT_EQ(meta.warmupInstructions, config.warmupInstructions);
    EXPECT_GE(meta.retired, config.warmupInstructions);
    EXPECT_GT(meta.cycle, 0u);
    EXPECT_EQ(meta.programSize, sim.program().size());
}

/** Fork restore: one baseline warmup image feeds every config variant;
 *  each forked run must be deterministic (two forks of the same
 *  variant agree exactly). */
TEST(Snapshot, ForkRestoreIsDeterministicAcrossVariants)
{
    const SimConfig warm_config =
        makeTestConfig(RunaheadConfig::kBaseline, false);
    std::string payload;
    {
        Simulation warm(warm_config, buildSuiteWorkload("mcf"));
        warm.runWarmup();
        payload = captureSnapshot(warm);
    }
    ASSERT_TRUE(peekSnapshotMeta(payload).forkSafe);

    for (const RunaheadConfig rc : kAllConfigs) {
        const SimConfig config = makeTestConfig(rc, false);
        // The variants differ only in runahead policy, so they share
        // the warmup digest — that is what makes the fork legal.
        ASSERT_EQ(snapshotWarmupDigest(config),
                  snapshotWarmupDigest(warm_config))
            << runaheadConfigName(rc);

        RunCapture caps[2];
        for (RunCapture &cap : caps) {
            Simulation sim(config, buildSuiteWorkload("mcf"));
            restoreSnapshot(sim, payload, SnapshotRestoreMode::kFork);
            hookCommits(sim, cap);
            cap.cycles = sim.runMeasured().cycles;
            collectStats(sim, cap);
            EXPECT_GT(cap.trace.size(), 0u);
        }
        expectIdentical(caps[0], caps[1], rc);
    }
}

TEST(Snapshot, ExactRestoreRejectsConfigMismatch)
{
    const SimConfig base =
        makeTestConfig(RunaheadConfig::kBaseline, false);
    std::string payload;
    {
        Simulation warm(base, buildSuiteWorkload("mcf"));
        warm.runWarmup();
        payload = captureSnapshot(warm);
    }

    const SimConfig other =
        makeTestConfig(RunaheadConfig::kHybrid, false);
    Simulation sim(other, buildSuiteWorkload("mcf"));
    try {
        restoreSnapshot(sim, payload, SnapshotRestoreMode::kExact);
        FAIL() << "config mismatch accepted";
    } catch (const SnapshotError &e) {
        EXPECT_EQ(e.kind(), SnapshotErrorKind::kMismatch);
    }
}

TEST(Snapshot, RestoreRejectsWorkloadMismatch)
{
    const SimConfig config =
        makeTestConfig(RunaheadConfig::kBaseline, false);
    std::string payload;
    {
        Simulation warm(config, buildSuiteWorkload("mcf"));
        warm.runWarmup();
        payload = captureSnapshot(warm);
    }

    Simulation sim(config, buildSuiteWorkload("lbm"));
    try {
        restoreSnapshot(sim, payload, SnapshotRestoreMode::kFork);
        FAIL() << "workload mismatch accepted";
    } catch (const SnapshotError &e) {
        EXPECT_EQ(e.kind(), SnapshotErrorKind::kMismatch);
    }
}

TEST(Snapshot, ForkRestoreRejectsWarmupConfigMismatch)
{
    const SimConfig base =
        makeTestConfig(RunaheadConfig::kBaseline, false);
    std::string payload;
    {
        Simulation warm(base, buildSuiteWorkload("mcf"));
        warm.runWarmup();
        payload = captureSnapshot(warm);
    }

    SimConfig other = makeTestConfig(RunaheadConfig::kBaseline, false);
    other.core.robEntries *= 2; // Warmup-relevant structural change.
    other.finalize();
    Simulation sim(other, buildSuiteWorkload("mcf"));
    try {
        restoreSnapshot(sim, payload, SnapshotRestoreMode::kFork);
        FAIL() << "warmup-config mismatch accepted";
    } catch (const SnapshotError &e) {
        EXPECT_EQ(e.kind(), SnapshotErrorKind::kMismatch);
    }
}

// --------------------------------------------------------------------
// File framing
// --------------------------------------------------------------------

class SnapshotFileTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = ::testing::TempDir() + "/snap_test.rabsnap";
        const SimConfig config =
            makeTestConfig(RunaheadConfig::kBaseline, false);
        Simulation warm(config, buildSuiteWorkload("mcf"));
        warm.runWarmup();
        payload_ = captureSnapshot(warm);
        writeSnapshotFile(path_, payload_);
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string readRaw() const
    {
        std::ifstream in(path_, std::ios::binary);
        return std::string((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    }

    void writeRaw(const std::string &bytes) const
    {
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    SnapshotErrorKind readKind() const
    {
        try {
            readSnapshotFile(path_);
        } catch (const SnapshotError &e) {
            return e.kind();
        }
        ADD_FAILURE() << "corrupt snapshot file accepted";
        return SnapshotErrorKind::kIo;
    }

    std::string path_;
    std::string payload_;
};

TEST_F(SnapshotFileTest, RoundTripsThroughDisk)
{
    EXPECT_EQ(readSnapshotFile(path_), payload_);
    // No leftover temp file from the atomic write.
    EXPECT_EQ(readRaw().size(), payload_.size() + 24);
}

TEST_F(SnapshotFileTest, RejectsTruncatedFile)
{
    const std::string raw = readRaw();
    writeRaw(raw.substr(0, raw.size() - 7));
    EXPECT_EQ(readKind(), SnapshotErrorKind::kTruncated);

    writeRaw(raw.substr(0, 11)); // Mid-header cut.
    EXPECT_EQ(readKind(), SnapshotErrorKind::kTruncated);
}

TEST_F(SnapshotFileTest, RejectsBitFlip)
{
    std::string raw = readRaw();
    raw[raw.size() / 2] ^= 0x40; // Somewhere inside the payload.
    writeRaw(raw);
    EXPECT_EQ(readKind(), SnapshotErrorKind::kCrc);
}

TEST_F(SnapshotFileTest, RejectsWrongMagic)
{
    std::string raw = readRaw();
    raw[0] = 'X';
    writeRaw(raw);
    EXPECT_EQ(readKind(), SnapshotErrorKind::kMagic);
}

TEST_F(SnapshotFileTest, RejectsWrongVersion)
{
    std::string raw = readRaw();
    raw[8] = 99; // Version u32 sits right after the 8-byte magic.
    writeRaw(raw);
    EXPECT_EQ(readKind(), SnapshotErrorKind::kVersion);
}

TEST_F(SnapshotFileTest, RejectsMissingFile)
{
    try {
        readSnapshotFile(path_ + ".does-not-exist");
        FAIL() << "missing file accepted";
    } catch (const SnapshotError &e) {
        EXPECT_EQ(e.kind(), SnapshotErrorKind::kIo);
    }
}

TEST_F(SnapshotFileTest, TruncatedPayloadRejectedOnRestore)
{
    // A payload cut inside a section must fail structurally, not read
    // out of bounds or silently succeed.
    const std::string cut = payload_.substr(0, payload_.size() / 2);
    const SimConfig config =
        makeTestConfig(RunaheadConfig::kBaseline, false);
    Simulation sim(config, buildSuiteWorkload("mcf"));
    try {
        restoreSnapshot(sim, cut, SnapshotRestoreMode::kExact);
        FAIL() << "truncated payload accepted";
    } catch (const SnapshotError &e) {
        EXPECT_TRUE(e.kind() == SnapshotErrorKind::kTruncated
                    || e.kind() == SnapshotErrorKind::kFormat)
            << snapshotErrorKindName(e.kind());
    }
}

TEST(SnapshotError, KindNamesAreStable)
{
    EXPECT_STREQ(snapshotErrorKindName(SnapshotErrorKind::kIo), "io");
    EXPECT_STREQ(snapshotErrorKindName(SnapshotErrorKind::kCrc), "crc");
    EXPECT_STREQ(snapshotErrorKindName(SnapshotErrorKind::kMismatch),
                 "mismatch");
}

// ---------------------------------------------------------------------
// Campaign integration: shared-image warmup
// ---------------------------------------------------------------------

CampaignSpec
campaignSpec()
{
    CampaignSpec spec;
    spec.name = "snapshot-grid";
    spec.workloads = {"mcf", "libq"};
    spec.variants = {makeVariant(RunaheadConfig::kBaseline, false),
                     makeVariant(RunaheadConfig::kHybrid, false),
                     makeVariant(RunaheadConfig::kCRE, false)};
    spec.instructions = 2'000;
    spec.warmup = 4'000;
    spec.snapshotWarmup = true;
    return spec;
}

TEST(SnapshotCampaign, SharedAndPerPointImagesAreByteIdentical)
{
    // The whole scheme's correctness argument in one test: the shared
    // arm warms each (workload, seed, prefetch) group once and forks
    // every variant from the image; the control arm builds a private
    // image per point. Same fork semantics, deterministic warmup ⇒
    // identical images ⇒ the canonical manifests must be
    // byte-identical. Also certified against thread-count variation.
    const CampaignSpec spec = campaignSpec();

    const CampaignResult shared = runCampaign(spec, 2);
    for (const PointResult &p : shared.points) {
        ASSERT_TRUE(p.ok) << p.error;
        EXPECT_TRUE(p.snapshotWarmed);
    }

    CampaignRunOptions cold_options;
    cold_options.snapshotNoShare = true;
    const CampaignResult cold = runCampaign(spec, 1, cold_options);
    for (const PointResult &p : cold.points)
        EXPECT_TRUE(p.snapshotWarmed);

    EXPECT_EQ(campaignManifest(shared, /*canonical=*/true).dump(),
              campaignManifest(cold, /*canonical=*/true).dump());
}

TEST(SnapshotCampaign, SnapshotAndInlineWarmupAreDistinctUniverses)
{
    // A snapshot-warmed point warmed up under the baseline policy; an
    // inline-warmed one under its own. The runs genuinely differ for
    // non-baseline variants, which is exactly why the v4 store key
    // separates the two worlds.
    CampaignSpec spec = campaignSpec();
    const CampaignResult snap = runCampaign(spec, 1);
    spec.snapshotWarmup = false;
    const CampaignResult inline_warm = runCampaign(spec, 1);

    ASSERT_EQ(snap.points.size(), inline_warm.points.size());
    // Baseline variants fork from a baseline-warmed image: identical
    // machines either way, so their results must agree exactly.
    for (std::size_t i = 0; i < snap.points.size(); ++i) {
        const PointResult &a = snap.points[i];
        const PointResult &b = inline_warm.points[i];
        ASSERT_TRUE(a.ok && b.ok);
        EXPECT_FALSE(b.snapshotWarmed);
        if (a.point.runahead == RunaheadConfig::kBaseline) {
            EXPECT_EQ(a.result.cycles, b.result.cycles)
                << a.point.workload;
            EXPECT_EQ(a.stats, b.stats) << a.point.workload;
        }
    }
}

TEST(SnapshotCampaign, StoreCachesImagesAndKeysResultsByImage)
{
    const fs::path root =
        fs::path(::testing::TempDir()) / "rabstore-snapwarm";
    fs::remove_all(root);
    ResultStore store(root.string());
    ASSERT_TRUE(store.ok()) << store.error();

    const CampaignSpec spec = campaignSpec();
    CampaignRunOptions options;
    options.store = &store;

    // Cold: every image is built (one per workload — one seed, one
    // prefetch setting) and persisted; every result is a miss.
    const CampaignResult cold = runCampaign(spec, 2, options);
    for (const PointResult &p : cold.points)
        ASSERT_TRUE(p.ok) << p.error;
    EXPECT_EQ(cold.storeSnapshotMisses, spec.workloads.size());
    EXPECT_EQ(cold.storeSnapshotHits, 0u);
    EXPECT_EQ(cold.storeMisses, spec.pointCount());

    // Warm: images and results all served from the store.
    const CampaignResult warm = runCampaign(spec, 2, options);
    EXPECT_EQ(warm.storeSnapshotHits, spec.workloads.size());
    EXPECT_EQ(warm.storeSnapshotMisses, 0u);
    EXPECT_EQ(warm.storeHits, spec.pointCount());
    EXPECT_EQ(campaignManifest(warm, true).dump(),
              campaignManifest(cold, true).dump());

    // An inline-warmup campaign over the same store must not be
    // served snapshot-warmed results: different key universe.
    CampaignSpec inline_spec = spec;
    inline_spec.snapshotWarmup = false;
    const CampaignResult inline_run =
        runCampaign(inline_spec, 2, options);
    EXPECT_EQ(inline_run.storeHits, 0u);
    EXPECT_EQ(inline_run.storeMisses, inline_spec.pointCount());
}

} // namespace
} // namespace rab
