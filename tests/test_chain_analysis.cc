/**
 * @file
 * Unit tests: the Figs. 3-5 chain-analysis instrumentation.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "runahead/chain_analysis.hh"
#include "stats/stats.hh"

namespace rab
{
namespace
{

DynUop
mk(SeqNum seq, Pc pc, ArchReg dest, ArchReg src1 = kNoArchReg,
   ArchReg src2 = kNoArchReg, bool load = false)
{
    DynUop u;
    u.seq = seq;
    u.pc = pc;
    u.sop.op = load ? Opcode::kLoad : Opcode::kIntAlu;
    u.sop.dest = dest;
    u.sop.src1 = src1;
    u.sop.src2 = src2;
    return u;
}

/** Record one gather iteration: addi(1), mix(2<-1), add(3<-2),
 *  load(4<-[3]), filler(20). Returns the load. */
DynUop
recordIteration(ChainAnalysis &ca, SeqNum base)
{
    ca.recordExec(mk(base + 0, 0, 1, 1));
    ca.recordExec(mk(base + 1, 1, 2, 1));
    ca.recordExec(mk(base + 2, 2, 3, 10, 2));
    const DynUop load = mk(base + 3, 3, 4, 3, kNoArchReg, true);
    ca.recordExec(load);
    ca.recordExec(mk(base + 4, 4, 20, 20, 4));
    return load;
}

TEST(ChainAnalysis, SliceLengthIsStaticChain)
{
    ChainAnalysis ca;
    ca.beginInterval();
    recordIteration(ca, 10);
    const DynUop miss = recordIteration(ca, 20);
    ca.recordMiss(miss);
    ca.endInterval();
    // Static slice: load, add, mix, addi = 4 distinct PCs (the older
    // iteration's addi dedups by PC).
    EXPECT_EQ(ca.chainsMeasured.value(), 1u);
    EXPECT_DOUBLE_EQ(ca.averageChainLength(), 4.0);
}

TEST(ChainAnalysis, IdenticalChainsCountAsRepeated)
{
    ChainAnalysis ca;
    ca.beginInterval();
    for (int i = 0; i < 5; ++i) {
        const DynUop miss = recordIteration(ca, 10 + i * 10);
        ca.recordMiss(miss);
    }
    ca.endInterval();
    EXPECT_EQ(ca.chainsTotal.value(), 5u);
    EXPECT_EQ(ca.chainsRepeated.value(), 4u); // first is "unique"
    EXPECT_DOUBLE_EQ(ca.repeatedFraction(), 0.8);
}

TEST(ChainAnalysis, DifferentChainsAreUnique)
{
    ChainAnalysis ca;
    ca.beginInterval();
    const DynUop m1 = recordIteration(ca, 10);
    ca.recordMiss(m1);
    // A structurally different miss: load whose address comes straight
    // from the induction.
    ca.recordExec(mk(31, 7, 5, 1));
    const DynUop m2 = mk(32, 8, 6, 5, kNoArchReg, true);
    ca.recordExec(m2);
    ca.recordMiss(m2);
    ca.endInterval();
    EXPECT_EQ(ca.chainsTotal.value(), 2u);
    EXPECT_EQ(ca.chainsRepeated.value(), 0u);
}

TEST(ChainAnalysis, NecessaryFractionCountsChainOps)
{
    ChainAnalysis ca;
    ca.beginInterval();
    const DynUop miss = recordIteration(ca, 10); // 5 executed ops
    ca.recordMiss(miss);
    ca.endInterval();
    // addi, mix, add, load are necessary; the filler is not.
    EXPECT_EQ(ca.opsExecuted.value(), 5u);
    EXPECT_EQ(ca.opsNecessary.value(), 4u);
    EXPECT_DOUBLE_EQ(ca.necessaryFraction(), 0.8);
}

TEST(ChainAnalysis, IntervalsAreIndependent)
{
    ChainAnalysis ca;
    ca.beginInterval();
    ca.recordMiss(recordIteration(ca, 10));
    ca.endInterval();
    ca.beginInterval();
    ca.recordMiss(recordIteration(ca, 50));
    ca.endInterval();
    // The same chain in a *new* interval counts as unique again.
    EXPECT_EQ(ca.chainsTotal.value(), 2u);
    EXPECT_EQ(ca.chainsRepeated.value(), 0u);
}

TEST(ChainAnalysis, IgnoresRecordsOutsideIntervals)
{
    ChainAnalysis ca;
    const DynUop miss = recordIteration(ca, 10); // no beginInterval
    ca.recordMiss(miss);
    ca.endInterval();
    EXPECT_EQ(ca.opsExecuted.value(), 0u);
    EXPECT_EQ(ca.chainsTotal.value(), 0u);
}

TEST(ChainAnalysis, OutOfOrderRecordingStillWalksProgramOrder)
{
    // Writeback order differs from program order; the walk must not.
    ChainAnalysis ca;
    ca.beginInterval();
    ca.recordExec(mk(12, 2, 3, 10, 2));    // add completes first
    ca.recordExec(mk(10, 0, 1, 1));        // addi later
    ca.recordExec(mk(11, 1, 2, 1));        // mix last
    const DynUop miss = mk(13, 3, 4, 3, kNoArchReg, true);
    ca.recordExec(miss);
    ca.recordMiss(miss);
    ca.endInterval();
    EXPECT_DOUBLE_EQ(ca.averageChainLength(), 4.0);
}

TEST(StatsJson, DumpJsonIsWellFormed)
{
    StatGroup root("root");
    Counter c;
    c += 5;
    root.addCounter("events", &c);
    StatGroup child("child", &root);
    Counter d;
    child.addCounter("inner", &d);
    std::ostringstream os;
    root.dumpJson(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("\"root.events\": 5"), std::string::npos);
    EXPECT_NE(s.find("\"root.child.inner\": 0"), std::string::npos);
    EXPECT_EQ(s.front(), '{');
    EXPECT_EQ(s[s.size() - 2], '}');
}

} // namespace
} // namespace rab
