/**
 * @file
 * Integration tests for the runahead mechanisms on the full core:
 * entry/exit behaviour, MLP generation, clock gating, hybrid decisions,
 * chain cache behaviour, enhancement policies.
 */

#include <gtest/gtest.h>

#include "core/simulation.hh"
#include "workloads/suite.hh"

namespace rab
{
namespace
{

SimResult
runWorkload(const char *name, RunaheadConfig rc, bool prefetch = false,
            std::uint64_t n = 20'000)
{
    return simulateWorkload(name, rc, prefetch, n, 5'000);
}

TEST(RunaheadIntegration, BaselineNeverEntersRunahead)
{
    const SimResult r = runWorkload("mcf", RunaheadConfig::kBaseline);
    EXPECT_EQ(r.runaheadIntervals, 0u);
    EXPECT_GT(r.memStallFraction, 0.3);
}

TEST(RunaheadIntegration, TraditionalEntersAndExits)
{
    const SimResult r = runWorkload("mcf", RunaheadConfig::kRunahead);
    EXPECT_GT(r.runaheadIntervals, 10u);
    EXPECT_GT(r.missesPerInterval, 1.0);
    EXPECT_EQ(r.bufferCycleFraction, 0.0); // no buffer in this config
}

TEST(RunaheadIntegration, TraditionalImprovesMemoryBoundIpc)
{
    const SimResult base = runWorkload("mcf", RunaheadConfig::kBaseline);
    const SimResult ra = runWorkload("mcf", RunaheadConfig::kRunahead);
    EXPECT_GT(ra.ipc, base.ipc * 1.05);
}

TEST(RunaheadIntegration, BufferGeneratesMoreMlpOnPhasedWorkload)
{
    // The paper's headline mechanism: the filtered chain loops ahead of
    // what the front-end-driven runahead reaches (milc-like phased
    // gathers make this pronounced).
    const SimResult ra = runWorkload("milc", RunaheadConfig::kRunahead);
    const SimResult rb =
        runWorkload("milc", RunaheadConfig::kRunaheadBufferCC);
    EXPECT_GT(rb.missesPerInterval, ra.missesPerInterval * 1.3);
}

TEST(RunaheadIntegration, BufferClockGatesFrontend)
{
    SimConfig config = makeConfig(RunaheadConfig::kRunaheadBufferCC,
                                  false);
    config.warmupInstructions = 0;
    config.instructions = 20'000;
    Simulation sim(config, buildSuiteWorkload("mcf"));
    const SimResult r = sim.run();
    EXPECT_GT(r.bufferCycleFraction, 0.1);
    EXPECT_GT(sim.core().frontend().gatedCycles.value(), 1000u);
}

TEST(RunaheadIntegration, BufferOnlySkipsWhenNoChainAvailable)
{
    // zeusmp's 150+-uop outer iterations mean a single instance of the
    // blocking PC rarely repeats inside the memory phase window... but
    // the phased structure guarantees matches. Use a program whose
    // iteration exceeds the ROB instead:
    WorkloadParams p;
    p.name = "bigiter";
    p.family = WorkloadFamily::kGather;
    p.workingSetBytes = 32ull << 20;
    p.aluPerIter = 250; // iteration > ROB: no second instance
    SimConfig config = makeConfig(RunaheadConfig::kRunaheadBuffer,
                                  false);
    config.warmupInstructions = 2'000;
    config.instructions = 20'000;
    Simulation sim(config, buildWorkload(p));
    sim.run();
    EXPECT_GT(sim.core().runahead().noChainNoEntry.value(), 0u);
    EXPECT_EQ(sim.core().runahead().bufferIntervals.value(), 0u);
}

TEST(RunaheadIntegration, HybridFallsBackOnLongChains)
{
    // omnetpp's ~65-uop chains exceed the 32-uop buffer: the hybrid
    // policy must use traditional runahead there (Fig. 8 / Fig. 14).
    const SimResult r = runWorkload("omnetpp", RunaheadConfig::kHybrid);
    EXPECT_LT(r.hybridBufferFraction, 0.5);
    EXPECT_GT(r.runaheadIntervals, 0u);
}

TEST(RunaheadIntegration, HybridPrefersBufferOnShortChains)
{
    const SimResult r = runWorkload("mcf", RunaheadConfig::kHybrid);
    EXPECT_GT(r.hybridBufferFraction, 0.5);
}

TEST(RunaheadIntegration, ChainCacheHitsOnRepetitiveWorkload)
{
    const SimResult r =
        runWorkload("mcf", RunaheadConfig::kRunaheadBufferCC);
    EXPECT_GT(r.chainCacheHitRate, 0.8);
    EXPECT_GT(r.chainCacheExactRate, 0.8);
}

TEST(RunaheadIntegration, ChainCacheInexactOnVariableChains)
{
    const SimResult r =
        runWorkload("sphinx", RunaheadConfig::kRunaheadBufferCC);
    EXPECT_LT(r.chainCacheExactRate, 0.95);
}

TEST(RunaheadIntegration, EnhancementsSuppressIntervals)
{
    const SimResult plain = runWorkload("mcf", RunaheadConfig::kRunahead);
    const SimResult enhanced =
        runWorkload("mcf", RunaheadConfig::kRunaheadEnhanced);
    EXPECT_LT(enhanced.runaheadIntervals, plain.runaheadIntervals);
}

TEST(RunaheadIntegration, EnhancementsReduceFetchedUops)
{
    SimConfig plain_cfg = makeConfig(RunaheadConfig::kRunahead, false);
    plain_cfg.warmupInstructions = 0;
    plain_cfg.instructions = 20'000;
    Simulation plain(plain_cfg, buildSuiteWorkload("mcf"));
    plain.run();

    SimConfig enh_cfg = makeConfig(RunaheadConfig::kRunaheadEnhanced,
                                   false);
    enh_cfg.warmupInstructions = 0;
    enh_cfg.instructions = 20'000;
    Simulation enh(enh_cfg, buildSuiteWorkload("mcf"));
    enh.run();

    EXPECT_LT(enh.core().frontend().fetchedUops.value(),
              plain.core().frontend().fetchedUops.value());
}

TEST(RunaheadIntegration, RunaheadCacheForwardsDuringRunahead)
{
    // A store whose data is computable during runahead (not derived
    // from a poisoned load) must be written to the runahead cache, and
    // a later load to the same word (after the store pseudo-retired
    // out of the store queue) must forward from it.
    ProgramBuilder b("racache");
    b.initReg(1, 0);
    b.initReg(10, 0x40000000); // 64 MiB gather region (misses)
    b.initReg(11, 0x10000);    // small scratch region
    auto loop = b.label();
    b.addi(1, 1, 1);
    b.mix(2, 1, 1, 5);
    b.alu(AluFunc::kAnd, 3, 2, kNoArchReg, 0x3fffff8);
    b.add(3, 10, 3);
    b.load(4, 3, 0); // the miss that drives runahead
    // Clean (induction-derived) store data:
    b.alu(AluFunc::kAnd, 5, 1, kNoArchReg, 0x7f8);
    b.add(5, 11, 5);
    b.store(5, 2, 0);
    b.load(6, 5, -8); // previous iteration's word
    b.mix(7, 7, 6, 9);
    b.jump(loop);

    SimConfig config = makeConfig(RunaheadConfig::kRunahead, false);
    config.warmupInstructions = 2'000;
    config.instructions = 30'000;
    Simulation sim(config, b.build());
    sim.run();
    EXPECT_GT(sim.core().runahead().runaheadCache().writes.value(), 0u);
    EXPECT_GT(sim.core().runaheadCacheForwards.value(), 0u);
}

TEST(RunaheadIntegration, PrefetcherReducesRunaheadWork)
{
    // Fig. 10 context: the stream prefetcher covers misses runahead
    // would otherwise have to uncover, so on a prefetchable stream the
    // core enters runahead far less often.
    const SimResult no_pf = runWorkload("libq", RunaheadConfig::kRunahead);
    const SimResult pf =
        runWorkload("libq", RunaheadConfig::kRunahead, true);
    EXPECT_LT(pf.runaheadIntervals, no_pf.runaheadIntervals);
    EXPECT_GT(pf.ipc, no_pf.ipc);
}

TEST(RunaheadIntegration, DramTrafficOrderingMatchesFig16)
{
    const SimResult base = runWorkload("libq", RunaheadConfig::kBaseline);
    const SimResult ra = runWorkload("libq", RunaheadConfig::kRunahead);
    const SimResult pf =
        runWorkload("libq", RunaheadConfig::kBaseline, true);
    // Runahead adds little DRAM traffic; the prefetcher adds a lot.
    EXPECT_LT(static_cast<double>(ra.dramRequests),
              1.35 * static_cast<double>(base.dramRequests));
    EXPECT_GT(pf.dramRequests, base.dramRequests);
}

TEST(RunaheadIntegration, EveryConfigRunsEveryMediumHighWorkload)
{
    for (const WorkloadSpec &spec : mediumHighSuite()) {
        for (const RunaheadConfig rc :
             {RunaheadConfig::kRunahead,
              RunaheadConfig::kRunaheadBufferCC,
              RunaheadConfig::kHybrid}) {
            SimConfig config = makeConfig(rc, false);
            config.warmupInstructions = 500;
            config.instructions = 3'000;
            Simulation sim(config, buildWorkload(spec.params));
            const SimResult r = sim.run();
            EXPECT_GE(r.instructions, 3'000u)
                << spec.params.name << "/" << runaheadConfigName(rc);
        }
    }
}

} // namespace
} // namespace rab
