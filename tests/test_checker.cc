/**
 * @file
 * Invariant checker tests: every checker invariant must fire on
 * deliberately corrupted state and stay silent on clean state — both
 * hand-built structures and full simulations of the paper's
 * configurations at check_level=full.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "backend/lsq.hh"
#include "backend/rob.hh"
#include "checker/invariant_checker.hh"
#include "core/simulation.hh"
#include "workloads/suite.hh"

namespace rab
{
namespace
{

/** Run @p fn and require it to raise exactly @p invariant. */
template <typename Fn>
void
expectViolation(Fn &&fn, const std::string &invariant)
{
    try {
        fn();
        FAIL() << "expected invariant violation '" << invariant << "'";
    } catch (const InvariantViolation &v) {
        EXPECT_EQ(v.invariant(), invariant) << v.what();
    }
}

DynUop
makeUop(SeqNum seq, Opcode op = Opcode::kIntAlu)
{
    DynUop uop;
    uop.seq = seq;
    uop.pc = seq;
    uop.sop.op = op;
    uop.completed = true;
    return uop;
}

// ---------------------------------------------------------------------
// Invariant 1: ROB age order and head-only retirement
// ---------------------------------------------------------------------

TEST(CheckerRob, CleanRobPasses)
{
    Rob rob(8);
    rob.push(makeUop(1));
    rob.push(makeUop(2));
    rob.push(makeUop(3));
    CheckerContext ctx;
    ctx.rob = &rob;
    InvariantChecker checker(CheckLevel::kFull, ctx);
    EXPECT_NO_THROW(checker.checkRobOrder());
    EXPECT_NO_THROW(checker.onCycle(16));
    EXPECT_EQ(checker.violations.value(), 0u);
}

TEST(CheckerRob, OutOfOrderSeqFires)
{
    Rob rob(8);
    rob.push(makeUop(5));
    rob.push(makeUop(3)); // younger slot, older seq: corrupt
    CheckerContext ctx;
    ctx.rob = &rob;
    InvariantChecker checker(CheckLevel::kFull, ctx);
    expectViolation([&] { checker.checkRobOrder(); }, "age-order");
    EXPECT_EQ(checker.violations.value(), 1u);
}

TEST(CheckerRob, RetireAwayFromHeadFires)
{
    Rob rob(8);
    rob.push(makeUop(1));
    const int tail = rob.push(makeUop(2));
    CheckerContext ctx;
    ctx.rob = &rob;
    InvariantChecker checker(CheckLevel::kFull, ctx);
    EXPECT_NO_THROW(checker.onRetire(rob.head(), rob.headSlot()));
    expectViolation([&] { checker.onRetire(rob.slot(tail), tail); },
                    "retire-at-head");
}

TEST(CheckerRob, RetireIncompleteFires)
{
    Rob rob(8);
    DynUop uop = makeUop(1);
    uop.completed = false;
    rob.push(std::move(uop));
    CheckerContext ctx;
    ctx.rob = &rob;
    InvariantChecker checker(CheckLevel::kFull, ctx);
    expectViolation([&] { checker.onRetire(rob.head(), rob.headSlot()); },
                    "retire-completed");
}

TEST(CheckerRob, DisabledCheckerIgnoresCorruption)
{
    Rob rob(8);
    rob.push(makeUop(5));
    rob.push(makeUop(3));
    CheckerContext ctx;
    ctx.rob = &rob;
    InvariantChecker checker(CheckLevel::kOff, ctx);
    EXPECT_NO_THROW(checker.onCycle(16));
    EXPECT_NO_THROW(checker.onRetire(rob.slot(rob.tailSlot()),
                                     rob.tailSlot()));
    EXPECT_EQ(checker.violations.value(), 0u);
}

// ---------------------------------------------------------------------
// Invariant 2: store queue <-> ROB agreement and forwarding order
// ---------------------------------------------------------------------

TEST(CheckerLsq, CleanStoreQueuePasses)
{
    Rob rob(8);
    StoreQueue sq(8);
    const int slot = rob.push(makeUop(1, Opcode::kStore));
    sq.allocate(1, slot);
    rob.push(makeUop(2));
    CheckerContext ctx;
    ctx.rob = &rob;
    ctx.sq = &sq;
    InvariantChecker checker(CheckLevel::kFull, ctx);
    EXPECT_NO_THROW(checker.checkStoreQueue());
}

TEST(CheckerLsq, MissingSqEntryFires)
{
    Rob rob(8);
    StoreQueue sq(8);
    const int slot = rob.push(makeUop(1, Opcode::kStore));
    sq.allocate(1, slot);
    rob.push(makeUop(2, Opcode::kStore)); // store uop with no SQ entry
    CheckerContext ctx;
    ctx.rob = &rob;
    ctx.sq = &sq;
    InvariantChecker checker(CheckLevel::kFull, ctx);
    expectViolation([&] { checker.checkStoreQueue(); }, "one-to-one");
}

TEST(CheckerLsq, SqEntryForDeadSlotFires)
{
    Rob rob(8);
    StoreQueue sq(8);
    const int slot = rob.push(makeUop(1, Opcode::kStore));
    sq.allocate(99, slot); // seq does not match the ROB entry
    CheckerContext ctx;
    ctx.rob = &rob;
    ctx.sq = &sq;
    InvariantChecker checker(CheckLevel::kFull, ctx);
    expectViolation([&] { checker.checkStoreQueue(); }, "rob-agreement");
}

TEST(CheckerLsq, ForwardFromYoungerStoreFires)
{
    CheckerContext ctx;
    InvariantChecker checker(CheckLevel::kCheap, ctx);
    EXPECT_NO_THROW(checker.onForward(10, 5));
    expectViolation([&] { checker.onForward(5, 10); },
                    "forward-program-order");
    expectViolation([&] { checker.onForward(5, 5); },
                    "forward-program-order");
}

// ---------------------------------------------------------------------
// Invariant 3: rename map + free list partition the register file
// ---------------------------------------------------------------------

/** A minimal consistent rename state: every arch reg mapped, the rest
 *  of the file free, nothing in flight. */
class CheckerRename : public ::testing::Test
{
  protected:
    CheckerRename() : prf_(kNumArchRegs + 8), rob_(4)
    {
        for (ArchReg r = 0; r < kNumArchRegs; ++r)
            rat_.setMap(r, prf_.alloc());
        ctx_.prf = &prf_;
        ctx_.rat = &rat_;
        ctx_.rob = &rob_;
    }

    PhysRegFile prf_;
    Rat rat_;
    Rob rob_;
    CheckerContext ctx_;
};

TEST_F(CheckerRename, CleanStatePasses)
{
    InvariantChecker checker(CheckLevel::kFull, ctx_);
    EXPECT_NO_THROW(checker.checkRenameState());
}

TEST_F(CheckerRename, MappedRegOnFreeListFires)
{
    prf_.free(rat_.map(5)); // double life: mapped and free
    InvariantChecker checker(CheckLevel::kFull, ctx_);
    expectViolation([&] { checker.checkRenameState(); }, "free-in-use");
}

TEST_F(CheckerRename, AliasedMappingFires)
{
    rat_.setMap(1, rat_.map(0)); // two arch regs share a phys reg
    InvariantChecker checker(CheckLevel::kFull, ctx_);
    expectViolation([&] { checker.checkRenameState(); },
                    "aliased-mapping");
}

TEST_F(CheckerRename, UnmappedArchRegFires)
{
    rat_.setMap(2, kNoPhysReg);
    InvariantChecker checker(CheckLevel::kFull, ctx_);
    expectViolation([&] { checker.checkRenameState(); }, "valid-mapping");
}

TEST_F(CheckerRename, LeakedRegisterFires)
{
    prf_.alloc(); // allocated but unreachable from RAT or ROB
    InvariantChecker checker(CheckLevel::kFull, ctx_);
    expectViolation([&] { checker.checkRenameState(); },
                    "register-leak");
}

// ---------------------------------------------------------------------
// Invariant 4: Algorithm 1 dependence-chain well-formedness
// ---------------------------------------------------------------------

class CheckerChain : public ::testing::Test
{
  protected:
    CheckerChain()
    {
        ProgramBuilder b("chain");
        auto loop = b.label();
        b.li(1, 0x1000);   // pc 0
        b.addi(2, 1, 8);   // pc 1
        b.load(3, 2, 0);   // pc 2: the blocking load
        b.store(2, 3, 0);  // pc 3
        b.jump(loop);      // pc 4
        program_ = b.build();
        ctx_.program = &program_;
        chain_ = {{1, program_.at(1)}, {2, program_.at(2)}};
    }

    Program program_;
    CheckerContext ctx_;
    DependenceChain chain_;
};

TEST_F(CheckerChain, WellFormedChainPasses)
{
    InvariantChecker checker(CheckLevel::kFull, ctx_);
    EXPECT_NO_THROW(checker.checkChain(chain_, 2, 32));
    EXPECT_NO_THROW(checker.onChainCacheInsert(2, chain_));
    EXPECT_NO_THROW(checker.onChainCacheHit(2, chain_));
}

TEST_F(CheckerChain, EmptyChainFires)
{
    InvariantChecker checker(CheckLevel::kFull, ctx_);
    expectViolation([&] { checker.checkChain({}, 2, 32); }, "non-empty");
}

TEST_F(CheckerChain, OverLengthChainFires)
{
    InvariantChecker checker(CheckLevel::kFull, ctx_);
    expectViolation([&] { checker.checkChain(chain_, 2, 1); },
                    "length-cap");
}

TEST_F(CheckerChain, NotEndingAtBlockingLoadFires)
{
    InvariantChecker checker(CheckLevel::kFull, ctx_);
    const DependenceChain truncated = {{1, program_.at(1)}};
    expectViolation([&] { checker.checkChain(truncated, 1, 32); },
                    "terminates-at-blocking-load");
    // Right shape, wrong PC.
    expectViolation([&] { checker.checkChain(chain_, 3, 32); },
                    "terminates-at-blocking-load");
}

TEST_F(CheckerChain, ControlUopInChainFires)
{
    InvariantChecker checker(CheckLevel::kFull, ctx_);
    const DependenceChain with_jump = {{4, program_.at(4)},
                                       {2, program_.at(2)}};
    expectViolation([&] { checker.checkChain(with_jump, 2, 32); },
                    "no-control-uops");
}

TEST_F(CheckerChain, LoadWithoutAddressBaseFires)
{
    InvariantChecker checker(CheckLevel::kFull, ctx_);
    DependenceChain corrupt = chain_;
    corrupt.back().sop.src1 = kNoArchReg;
    expectViolation([&] { checker.checkChain(corrupt, 2, 32); },
                    "well-formed-sources");
}

TEST_F(CheckerChain, DecodeMismatchFires)
{
    InvariantChecker checker(CheckLevel::kFull, ctx_);
    DependenceChain corrupt = chain_;
    corrupt.front().sop.imm += 1; // bit flip vs the static program
    expectViolation([&] { checker.checkChain(corrupt, 2, 32); },
                    "decodes-from-program");
}

// ---------------------------------------------------------------------
// Invariant 5: runahead checkpoint / restore / store containment
// ---------------------------------------------------------------------

class CheckerRunahead : public ::testing::Test
{
  protected:
    CheckerRunahead()
    {
        for (ArchReg r = 0; r < kNumArchRegs; ++r)
            arch_[r] = 0x100 + r;
        ctx_.archValues = &arch_;
        checkpoint_.values = arch_;
        checkpoint_.valid = true;
    }

    std::array<std::uint64_t, kNumArchRegs> arch_{};
    CheckerContext ctx_;
    ArchCheckpoint checkpoint_;
};

TEST_F(CheckerRunahead, CleanIntervalPasses)
{
    InvariantChecker checker(CheckLevel::kFull, ctx_);
    EXPECT_NO_THROW(checker.onRunaheadEnter(checkpoint_));
    EXPECT_NO_THROW(checker.onCycle(1)); // arch state still frozen
    checkpoint_.valid = false;           // consumed by the restore
    EXPECT_NO_THROW(checker.onRunaheadExit(checkpoint_));
    EXPECT_NO_THROW(checker.onRealStore(0x40)); // normal mode: fine
    EXPECT_EQ(checker.violations.value(), 0u);
}

TEST_F(CheckerRunahead, InvalidCheckpointFires)
{
    InvariantChecker checker(CheckLevel::kFull, ctx_);
    checkpoint_.valid = false;
    expectViolation([&] { checker.onRunaheadEnter(checkpoint_); },
                    "checkpoint-taken");
}

TEST_F(CheckerRunahead, CheckpointValueMismatchFires)
{
    InvariantChecker checker(CheckLevel::kFull, ctx_);
    checkpoint_.values[3] ^= 1;
    expectViolation([&] { checker.onRunaheadEnter(checkpoint_); },
                    "checkpoint-exact");
}

TEST_F(CheckerRunahead, ArchStateMutatedDuringRunaheadFires)
{
    InvariantChecker checker(CheckLevel::kFull, ctx_);
    checker.onRunaheadEnter(checkpoint_);
    arch_[7] += 1; // runahead result leaked into architectural state
    expectViolation([&] { checker.onCycle(1); }, "arch-state-frozen");
}

TEST_F(CheckerRunahead, RunaheadStoreToRealMemoryFires)
{
    InvariantChecker checker(CheckLevel::kFull, ctx_);
    checker.onRunaheadEnter(checkpoint_);
    expectViolation([&] { checker.onRealStore(0x40); },
                    "store-containment");
}

TEST_F(CheckerRunahead, UnconsumedCheckpointAtExitFires)
{
    InvariantChecker checker(CheckLevel::kFull, ctx_);
    checker.onRunaheadEnter(checkpoint_);
    expectViolation([&] { checker.onRunaheadExit(checkpoint_); },
                    "checkpoint-consumed");
}

TEST_F(CheckerRunahead, InexactRestoreFires)
{
    InvariantChecker checker(CheckLevel::kFull, ctx_);
    checker.onRunaheadEnter(checkpoint_);
    arch_[2] += 1; // restore did not reproduce the entry state
    checkpoint_.valid = false;
    expectViolation([&] { checker.onRunaheadExit(checkpoint_); },
                    "restore-exact");
}

TEST_F(CheckerRunahead, PipelineNotFlushedAtExitFires)
{
    Rob rob(8);
    rob.push(makeUop(1));
    ctx_.rob = &rob;
    InvariantChecker checker(CheckLevel::kFull, ctx_);
    checker.onRunaheadEnter(checkpoint_);
    checkpoint_.valid = false;
    expectViolation([&] { checker.onRunaheadExit(checkpoint_); },
                    "pipeline-flushed");
}

// ---------------------------------------------------------------------
// Invariant 6: chain cache indexed only by generating blocking-load PC
// ---------------------------------------------------------------------

TEST_F(CheckerChain, ChainCacheIndexMismatchFires)
{
    InvariantChecker checker(CheckLevel::kFull, ctx_);
    expectViolation([&] { checker.onChainCacheInsert(1, chain_); },
                    "indexed-by-generating-pc");
    expectViolation([&] { checker.onChainCacheHit(1, chain_); },
                    "indexed-by-generating-pc");
}

// ---------------------------------------------------------------------
// Check-level plumbing
// ---------------------------------------------------------------------

TEST(CheckLevelTest, ParseAndName)
{
    EXPECT_EQ(parseCheckLevel("off"), CheckLevel::kOff);
    EXPECT_EQ(parseCheckLevel("cheap"), CheckLevel::kCheap);
    EXPECT_EQ(parseCheckLevel("full"), CheckLevel::kFull);
    EXPECT_STREQ(checkLevelName(CheckLevel::kFull), "full");
}

TEST(CheckLevelTest, EnvOverride)
{
    ::setenv("RAB_CHECK_LEVEL", "cheap", 1);
    EXPECT_EQ(checkLevelFromEnv(CheckLevel::kOff), CheckLevel::kCheap);
    ::unsetenv("RAB_CHECK_LEVEL");
    EXPECT_EQ(checkLevelFromEnv(CheckLevel::kFull), CheckLevel::kFull);
}

// ---------------------------------------------------------------------
// Clean full-system runs: every configuration, check_level=full,
// zero violations and a non-trivial number of scans.
// ---------------------------------------------------------------------

TEST(CheckerIntegration, AllConfigsCleanAtFull)
{
    for (const RunaheadConfig rc :
         {RunaheadConfig::kBaseline, RunaheadConfig::kRunahead,
          RunaheadConfig::kRunaheadEnhanced,
          RunaheadConfig::kRunaheadBuffer,
          RunaheadConfig::kRunaheadBufferCC, RunaheadConfig::kHybrid}) {
        SimConfig config = makeConfig(rc, false);
        config.warmupInstructions = 1'000;
        config.instructions = 5'000;
        config.checkLevel = CheckLevel::kFull;
        config.finalize();
        Simulation sim(config, buildSuiteWorkload("mcf"));
        EXPECT_NO_THROW(sim.run()) << runaheadConfigName(rc);
        EXPECT_EQ(sim.core().checker().level(), CheckLevel::kFull);
        EXPECT_EQ(sim.core().checker().violations.value(), 0u)
            << runaheadConfigName(rc);
        EXPECT_GT(sim.core().checker().checksRun.value(), 0u)
            << runaheadConfigName(rc);
    }
}

} // namespace
} // namespace rab
