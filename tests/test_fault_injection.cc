/**
 * @file
 * Fault injection, recovery and containment tests.
 *
 * Layers under test (src/fault + the wiring through the core, memory
 * system and runahead controller):
 *   - FaultInjector: every fault kind fires, deterministically per seed.
 *   - CheckPolicy: violations route to the degrade sink instead of
 *     throwing for speculative modules, and still throw otherwise.
 *   - DegradationLadder: steps down in order under faults and re-enables
 *     stepwise after the probation window.
 *   - ForwardProgressWatchdog: grants bounded recoveries, resets on
 *     progress, and gives up with WatchdogTimeout when recovery stops
 *     helping.
 *   - The headline differential guarantee: speculative-only faults
 *     leave the architectural commit stream bit-identical to the
 *     fault-free run, across all six paper configurations.
 *   - Memory-side faults (DRAM drops/delays, queue stall windows) are
 *     survived via bounded retry + watchdog, with the retry statistics
 *     surfaced, and also never change architectural results.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "checker/invariant_checker.hh"
#include "core/simulation.hh"
#include "fault/fault_injector.hh"
#include "fault/watchdog.hh"
#include "runahead/chain_cache.hh"
#include "runahead/degradation_ladder.hh"
#include "workloads/suite.hh"

namespace rab
{
namespace
{

DependenceChain
makeChain()
{
    DependenceChain chain;
    for (int i = 0; i < 4; ++i) {
        ChainOp op;
        op.pc = static_cast<Pc>(10 + i);
        op.sop.op = Opcode::kIntAlu;
        op.sop.func = AluFunc::kAdd;
        op.sop.dest = static_cast<ArchReg>(1 + i);
        op.sop.src1 = static_cast<ArchReg>(i);
        op.sop.imm = i;
        chain.push_back(op);
    }
    chain.back().sop.op = Opcode::kLoad;
    return chain;
}

FaultConfig
allOn()
{
    FaultConfig config;
    config.enabled = true;
    config.setAllRates(1.0);
    return config;
}

// ---------------------------------------------------------------------
// FaultInjector units
// ---------------------------------------------------------------------

TEST(FaultInjector, DisabledInjectorIsInert)
{
    FaultConfig config; // enabled = false, rates would not matter
    config.setAllRates(1.0);
    FaultInjector inj(config);
    Uop uop;
    uop.op = Opcode::kIntAlu;
    uop.dest = 1;
    EXPECT_FALSE(inj.maybeCorruptUop(uop));
    EXPECT_FALSE(inj.dropDramResponse());
    EXPECT_EQ(inj.dramDelay(), 0u);
    EXPECT_FALSE(inj.memQueueStalled(0));
    EXPECT_EQ(inj.totalInjected(), 0u);
}

TEST(FaultInjector, ChainCacheCorruptionFires)
{
    FaultInjector inj(allOn());
    ChainCache cache(2);
    const DependenceChain original = makeChain();
    cache.insert(42, original);

    EXPECT_TRUE(inj.maybeCorruptChainCache(cache));
    EXPECT_EQ(inj.chainCorruptions.value(), 1u);
    const DependenceChain *stored = cache.lookup(42);
    ASSERT_NE(stored, nullptr);
    EXPECT_FALSE(chainsEqual(*stored, original));
}

TEST(FaultInjector, ChainCorruptionKeepsChainStructurallyLegal)
{
    FaultInjector inj(allOn());
    for (int round = 0; round < 200; ++round) {
        DependenceChain chain = makeChain();
        inj.corruptChain(chain, /*program_size=*/64);
        ASSERT_FALSE(chain.empty());
        for (const ChainOp &op : chain) {
            ASSERT_LT(op.pc, 64u);
            if (op.sop.dest != kNoArchReg)
                ASSERT_LT(op.sop.dest, kNumArchRegs);
            if (op.sop.src1 != kNoArchReg)
                ASSERT_LT(op.sop.src1, kNumArchRegs);
            if (op.sop.src2 != kNoArchReg)
                ASSERT_LT(op.sop.src2, kNumArchRegs);
        }
    }
}

TEST(FaultInjector, UopFlipFiresAndStaysLegal)
{
    FaultInjector inj(allOn());
    for (int round = 0; round < 100; ++round) {
        Uop uop;
        uop.op = Opcode::kLoad;
        uop.dest = 3;
        uop.src1 = 4;
        uop.imm = 8;
        ASSERT_TRUE(inj.maybeCorruptUop(uop));
        // Opcode class never changes; present registers stay valid.
        ASSERT_EQ(uop.op, Opcode::kLoad);
        ASSERT_NE(uop.dest, kNoArchReg);
        ASSERT_LT(uop.dest, kNumArchRegs);
        ASSERT_NE(uop.src1, kNoArchReg);
        ASSERT_LT(uop.src1, kNumArchRegs);
    }
    EXPECT_EQ(inj.uopFlips.value(), 100u);
}

TEST(FaultInjector, MemoryFaultKindsFire)
{
    FaultInjector inj(allOn());
    EXPECT_TRUE(inj.dropDramResponse());
    EXPECT_GT(inj.dramDelay(), 0u);
    EXPECT_TRUE(inj.memQueueStalled(100));
    EXPECT_EQ(inj.dramDrops.value(), 1u);
    EXPECT_EQ(inj.dramDelays.value(), 1u);
    EXPECT_EQ(inj.memStallWindows.value(), 1u);
    // The stall window stays open for memStallCycles...
    EXPECT_TRUE(inj.memQueueStalled(100 + inj.config().memStallCycles / 2));
    EXPECT_EQ(inj.memStallWindows.value(), 1u); // ...without re-rolling.
    EXPECT_GE(inj.totalInjected(), 3u);
}

TEST(FaultInjector, SameSeedSameSchedule)
{
    FaultConfig config;
    config.enabled = true;
    config.dramDropRate = 0.5;
    config.dramDelayRate = 0.5;
    config.seed = 12345;

    std::vector<std::uint64_t> a, b;
    {
        FaultInjector inj(config);
        for (int i = 0; i < 200; ++i) {
            a.push_back(inj.dropDramResponse() ? 1 : 0);
            a.push_back(inj.dramDelay());
        }
    }
    {
        FaultInjector inj(config);
        for (int i = 0; i < 200; ++i) {
            b.push_back(inj.dropDramResponse() ? 1 : 0);
            b.push_back(inj.dramDelay());
        }
    }
    EXPECT_EQ(a, b);

    config.seed = 54321;
    FaultInjector other(config);
    std::vector<std::uint64_t> c;
    for (int i = 0; i < 200; ++i) {
        c.push_back(other.dropDramResponse() ? 1 : 0);
        c.push_back(other.dramDelay());
    }
    EXPECT_NE(a, c);
}

// ---------------------------------------------------------------------
// CheckPolicy
// ---------------------------------------------------------------------

TEST(CheckPolicy, ParseAndNames)
{
    EXPECT_EQ(parseCheckPolicy("throw"), CheckPolicy::kThrow);
    EXPECT_EQ(parseCheckPolicy("degrade"), CheckPolicy::kDegrade);
    EXPECT_STREQ(checkPolicyName(CheckPolicy::kThrow), "throw");
    EXPECT_STREQ(checkPolicyName(CheckPolicy::kDegrade), "degrade");
    EXPECT_TRUE(InvariantChecker::isSpeculativeModule("chain"));
    EXPECT_TRUE(InvariantChecker::isSpeculativeModule("chain_cache"));
    EXPECT_TRUE(InvariantChecker::isSpeculativeModule("runahead"));
    EXPECT_FALSE(InvariantChecker::isSpeculativeModule("rob"));
    EXPECT_FALSE(InvariantChecker::isSpeculativeModule("rename"));
}

TEST(CheckPolicy, SpeculativeViolationRoutesToSinkUnderDegrade)
{
    CheckerContext ctx; // empty: chain checks need no structures
    InvariantChecker checker(CheckLevel::kFull, ctx);
    checker.setPolicy(CheckPolicy::kDegrade);
    int routed = 0;
    checker.setDegradeSink(
        [&](const InvariantViolation &v) {
            ++routed;
            EXPECT_EQ(v.module(), "chain");
        });

    DependenceChain empty;
    EXPECT_NO_THROW(checker.checkChain(empty, 5, 32));
    EXPECT_EQ(routed, 1);
    EXPECT_EQ(checker.violationsRouted.value(), 1u);
    EXPECT_EQ(checker.violations.value(), 1u);
}

TEST(CheckPolicy, ThrowPolicyStillThrows)
{
    CheckerContext ctx;
    InvariantChecker checker(CheckLevel::kFull, ctx);
    checker.setPolicy(CheckPolicy::kThrow);
    checker.setDegradeSink([](const InvariantViolation &) {});
    DependenceChain empty;
    EXPECT_THROW(checker.checkChain(empty, 5, 32), InvariantViolation);
}

TEST(CheckPolicy, DegradeWithoutSinkThrows)
{
    CheckerContext ctx;
    InvariantChecker checker(CheckLevel::kFull, ctx);
    checker.setPolicy(CheckPolicy::kDegrade);
    DependenceChain empty;
    EXPECT_THROW(checker.checkChain(empty, 5, 32), InvariantViolation);
}

// ---------------------------------------------------------------------
// Degradation ladder
// ---------------------------------------------------------------------

TEST(DegradationLadder, StepsDownInOrderAndReenablesStepwise)
{
    DegradationConfig config;
    config.faultThreshold = 2;
    config.probationCycles = 100;
    DegradationLadder ladder(config);

    EXPECT_EQ(ladder.level(), DegradeLevel::kFull);
    EXPECT_TRUE(ladder.chainCacheAllowed());
    EXPECT_TRUE(ladder.bufferAllowed());
    EXPECT_TRUE(ladder.runaheadAllowed());

    const auto faults = [&](int n) {
        for (int i = 0; i < n; ++i) {
            ladder.tick();
            ladder.noteFault();
        }
    };

    faults(2);
    EXPECT_EQ(ladder.level(), DegradeLevel::kNoChainCache);
    EXPECT_FALSE(ladder.chainCacheAllowed());
    EXPECT_TRUE(ladder.bufferAllowed());

    faults(2);
    EXPECT_EQ(ladder.level(), DegradeLevel::kNoBuffer);
    EXPECT_FALSE(ladder.bufferAllowed());
    EXPECT_TRUE(ladder.runaheadAllowed());

    faults(2);
    EXPECT_EQ(ladder.level(), DegradeLevel::kNoRunahead);
    EXPECT_FALSE(ladder.runaheadAllowed());

    EXPECT_EQ(ladder.degradeSteps.value(), 3u);
    EXPECT_EQ(ladder.toNoChainCache.value(), 1u);
    EXPECT_EQ(ladder.toNoBuffer.value(), 1u);
    EXPECT_EQ(ladder.toNoRunahead.value(), 1u);
    EXPECT_EQ(ladder.faultsObserved.value(), 6u);

    // One clean probation window per re-enable step.
    for (int i = 0; i < 101; ++i)
        ladder.tick();
    EXPECT_EQ(ladder.level(), DegradeLevel::kNoBuffer);
    for (int i = 0; i < 101; ++i)
        ladder.tick();
    EXPECT_EQ(ladder.level(), DegradeLevel::kNoChainCache);
    for (int i = 0; i < 101; ++i)
        ladder.tick();
    EXPECT_EQ(ladder.level(), DegradeLevel::kFull);
    EXPECT_TRUE(ladder.chainCacheAllowed());
    EXPECT_EQ(ladder.reenableSteps.value(), 3u);

    // A fault during probation restarts the clean window.
    faults(2);
    EXPECT_EQ(ladder.level(), DegradeLevel::kNoChainCache);
    for (int i = 0; i < 50; ++i)
        ladder.tick();
    ladder.noteFault();
    for (int i = 0; i < 60; ++i)
        ladder.tick();
    EXPECT_EQ(ladder.level(), DegradeLevel::kNoChainCache);
}

TEST(DegradationLadder, DisabledLadderNeverDegrades)
{
    DegradationConfig config;
    config.enabled = false;
    config.faultThreshold = 1;
    DegradationLadder ladder(config);
    for (int i = 0; i < 10; ++i)
        ladder.noteFault();
    EXPECT_EQ(ladder.level(), DegradeLevel::kFull);
}

// ---------------------------------------------------------------------
// Forward-progress watchdog
// ---------------------------------------------------------------------

TEST(Watchdog, DisabledByDefault)
{
    ForwardProgressWatchdog wd(WatchdogConfig{});
    EXPECT_FALSE(wd.enabled());
    EXPECT_FALSE(wd.shouldRecover(1'000'000, 0, 0, ""));
}

TEST(Watchdog, GrantsRecoveriesAndResetsOnProgress)
{
    WatchdogConfig config;
    config.cycles = 100;
    config.giveUpAfter = 3;
    ForwardProgressWatchdog wd(config);

    EXPECT_FALSE(wd.shouldRecover(100, 0, 0, "")); // at the bound
    EXPECT_TRUE(wd.shouldRecover(101, 0, 0, ""));  // past it
    EXPECT_EQ(wd.fires.value(), 1u);
    EXPECT_EQ(wd.recoveries.value(), 1u);

    // Retirement happened since the last fire: consecutive resets.
    EXPECT_TRUE(wd.shouldRecover(300, 150, 10, ""));
    EXPECT_EQ(wd.consecutiveFires(), 1);
    EXPECT_TRUE(wd.shouldRecover(500, 350, 20, ""));
    EXPECT_EQ(wd.consecutiveFires(), 1);
}

TEST(Watchdog, GivesUpAfterConsecutiveFiresWithoutProgress)
{
    WatchdogConfig config;
    config.cycles = 100;
    config.giveUpAfter = 2;
    ForwardProgressWatchdog wd(config);

    EXPECT_TRUE(wd.shouldRecover(101, 0, 5, ""));
    EXPECT_TRUE(wd.shouldRecover(202, 101, 5, ""));
    EXPECT_THROW(wd.shouldRecover(303, 202, 5, "state"),
                 WatchdogTimeout);
}

TEST(Watchdog, HonoursTotalRecoveryBudget)
{
    WatchdogConfig config;
    config.cycles = 100;
    config.giveUpAfter = 100; // consecutive never trips
    config.maxRecoveries = 2;
    ForwardProgressWatchdog wd(config);

    EXPECT_TRUE(wd.shouldRecover(101, 0, 1, ""));
    EXPECT_TRUE(wd.shouldRecover(300, 150, 2, ""));
    EXPECT_THROW(wd.shouldRecover(500, 350, 3, ""), WatchdogTimeout);
}

// ---------------------------------------------------------------------
// Full-system containment: the headline differential guarantee
// ---------------------------------------------------------------------

struct Commit
{
    Pc pc;
    std::uint64_t result;
    Addr addr;

    bool operator==(const Commit &o) const
    {
        return pc == o.pc && result == o.result && addr == o.addr;
    }
};

std::vector<Commit>
runTrace(SimConfig config, const std::string &workload,
         std::uint64_t instructions)
{
    config.warmupInstructions = 0;
    config.instructions = instructions;
    Simulation sim(config, buildSuiteWorkload(workload));
    std::vector<Commit> trace;
    sim.core().setCommitHook([&](const DynUop &uop) {
        trace.push_back(Commit{
            uop.pc,
            uop.sop.hasDest() || uop.isStore() ? uop.result : 0,
            uop.sop.isMem() ? uop.effAddr : kNoAddr});
    });
    sim.run();
    // The final cycle may overshoot the target by up to commit width,
    // and by a different amount in differently-timed runs.
    trace.resize(std::min<std::size_t>(trace.size(), instructions));
    return trace;
}

constexpr RunaheadConfig kAllConfigs[] = {
    RunaheadConfig::kBaseline,         RunaheadConfig::kRunahead,
    RunaheadConfig::kRunaheadEnhanced, RunaheadConfig::kRunaheadBuffer,
    RunaheadConfig::kRunaheadBufferCC, RunaheadConfig::kHybrid,
};

TEST(FaultContainment, SpeculativeFaultsPreserveArchitecturalResults)
{
    constexpr std::uint64_t kInstructions = 3'000;
    for (const RunaheadConfig rc : kAllConfigs) {
        const std::vector<Commit> clean =
            runTrace(makeConfig(rc, false), "mcf", kInstructions);

        SimConfig faulty = makeConfig(rc, false);
        faulty.checkPolicy = CheckPolicy::kDegrade;
        faulty.fault.enabled = true;
        faulty.fault.seed = 7;
        faulty.fault.chainCacheRate = 0.05;  // speculative-only faults
        faulty.fault.bufferUopRate = 0.05;
        faulty.finalize();
        const std::vector<Commit> dirty =
            runTrace(faulty, "mcf", kInstructions);

        ASSERT_EQ(clean.size(), dirty.size())
            << runaheadConfigName(rc);
        for (std::size_t i = 0; i < clean.size(); ++i) {
            ASSERT_TRUE(clean[i] == dirty[i])
                << runaheadConfigName(rc) << " uop " << i << " pc "
                << clean[i].pc;
        }
    }
}

TEST(FaultContainment, MemoryFaultsPreserveArchitecturalResults)
{
    // DRAM drops/delays and queue stalls change timing only; the
    // bounded-retry layer and the core's replay keep values identical.
    constexpr std::uint64_t kInstructions = 2'000;
    const std::vector<Commit> clean = runTrace(
        makeConfig(RunaheadConfig::kHybrid, false), "mcf", kInstructions);

    SimConfig faulty = makeConfig(RunaheadConfig::kHybrid, false);
    faulty.checkPolicy = CheckPolicy::kDegrade;
    faulty.fault.enabled = true;
    faulty.fault.seed = 11;
    faulty.fault.dramDropRate = 0.3;
    faulty.fault.dramDelayRate = 0.1;
    faulty.fault.memStallRate = 0.01;
    faulty.finalize();
    faulty.warmupInstructions = 0;
    faulty.instructions = kInstructions;

    // Built inline (not via runTrace) so the retry statistics can be
    // asserted afterwards.
    Simulation run(faulty, buildSuiteWorkload("mcf"));
    std::vector<Commit> faulted;
    run.core().setCommitHook([&](const DynUop &uop) {
        faulted.push_back(Commit{
            uop.pc,
            uop.sop.hasDest() || uop.isStore() ? uop.result : 0,
            uop.sop.isMem() ? uop.effAddr : kNoAddr});
    });
    run.run();
    faulted.resize(std::min<std::size_t>(faulted.size(), kInstructions));

    ASSERT_EQ(clean.size(), faulted.size());
    for (std::size_t i = 0; i < clean.size(); ++i) {
        ASSERT_TRUE(clean[i] == faulted[i])
            << "uop " << i << " pc " << clean[i].pc;
    }

    // The fault campaign actually exercised the retry machinery.
    EXPECT_GT(run.faults()->dramDrops.value(), 0u);
    EXPECT_GT(run.memory().memTimeouts.value(), 0u);
    EXPECT_GT(run.memory().memRetries.value(), 0u);
}

TEST(FaultContainment, DegradationLadderEngagesUnderSustainedFaults)
{
    SimConfig config = makeConfig(RunaheadConfig::kRunaheadBufferCC,
                                  false);
    config.checkPolicy = CheckPolicy::kDegrade;
    config.fault.enabled = true;
    config.fault.seed = 3;
    config.fault.chainCacheRate = 1.0; // corrupt on every opportunity
    config.core.runahead.degrade.faultThreshold = 1;
    config.core.runahead.degrade.probationCycles = 100'000'000;
    config.finalize();
    config.warmupInstructions = 0;
    config.instructions = 5'000;

    Simulation sim(config, buildSuiteWorkload("mcf"));
    sim.run();

    const RunaheadController &ra = sim.core().runahead();
    EXPECT_GT(ra.speculativeFaults.value(), 0u);
    EXPECT_GT(ra.ladder().degradeSteps.value(), 0u);
    EXPECT_GE(static_cast<int>(ra.ladder().level()),
              static_cast<int>(DegradeLevel::kNoChainCache));
    EXPECT_GT(sim.core().checker().violationsRouted.value(), 0u);
}

TEST(FaultContainment, WatchdogGivesUpWhenEveryResponseDrops)
{
    SimConfig config = makeConfig(RunaheadConfig::kHybrid, false);
    config.checkPolicy = CheckPolicy::kDegrade;
    config.fault.enabled = true;
    config.fault.dramDropRate = 1.0; // nothing ever completes
    config.core.watchdog.cycles = 5'000;
    config.finalize();
    config.warmupInstructions = 0;
    config.instructions = 10'000;

    Simulation sim(config, buildSuiteWorkload("mcf"));
    EXPECT_THROW(sim.run(), WatchdogTimeout);
    EXPECT_GT(sim.core().watchdog().fires.value(), 0u);
}

TEST(FaultContainment, QueueStallWindowsAreCountedAndSurvived)
{
    SimConfig config = makeConfig(RunaheadConfig::kHybrid, false);
    config.checkPolicy = CheckPolicy::kDegrade;
    config.fault.enabled = true;
    config.fault.seed = 5;
    config.fault.memStallRate = 0.05;
    config.fault.memStallCycles = 100;
    config.finalize();
    config.warmupInstructions = 0;
    config.instructions = 3'000;

    Simulation sim(config, buildSuiteWorkload("mcf"));
    const SimResult result = sim.run();

    EXPECT_EQ(result.instructions, 3'000u);
    EXPECT_GT(sim.faults()->memStallWindows.value(), 0u);
    EXPECT_GT(sim.memory().queueFaultStalls.value(), 0u);
    EXPECT_GT(sim.core().loadQueueRetries.value()
                  + sim.core().storeQueueRetries.value(),
              0u);
}

} // namespace
} // namespace rab
