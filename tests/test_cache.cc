/**
 * @file
 * Unit + property tests: set-associative cache.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "memory/cache.hh"

namespace rab
{
namespace
{

CacheConfig
smallConfig()
{
    return CacheConfig{"t", 1024, 2, 64, 3}; // 8 sets x 2 ways
}

TEST(Cache, MissThenHit)
{
    Cache cache(smallConfig());
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    cache.insert(0x1000, false);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_EQ(cache.hits.value(), 1u);
    EXPECT_EQ(cache.misses.value(), 1u);
}

TEST(Cache, SubLineAddressesHitSameLine)
{
    Cache cache(smallConfig());
    cache.insert(0x1000, false);
    EXPECT_TRUE(cache.access(0x103f, false).hit);
    EXPECT_FALSE(cache.access(0x1040, false).hit);
}

TEST(Cache, LruEvictsOldest)
{
    Cache cache(smallConfig());
    // Three lines mapping to the same set (8 sets x 64B lines: set
    // stride is 512 bytes).
    cache.insert(0x0000, false);
    cache.insert(0x0200, false);
    cache.access(0x0000, false); // touch: 0x0200 becomes LRU
    const Eviction ev = cache.insert(0x0400, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, 0x0200u);
    EXPECT_TRUE(cache.probe(0x0000));
    EXPECT_FALSE(cache.probe(0x0200));
}

TEST(Cache, DirtyEvictionReported)
{
    Cache cache(smallConfig());
    cache.insert(0x0000, /*is_write=*/true);
    cache.insert(0x0200, false);
    const Eviction ev = cache.insert(0x0400, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, 0x0000u);
    EXPECT_TRUE(ev.dirty);
}

TEST(Cache, WriteHitSetsDirty)
{
    Cache cache(smallConfig());
    cache.insert(0x0000, false);
    cache.access(0x0000, /*is_write=*/true);
    cache.insert(0x0200, false);
    const Eviction ev = cache.insert(0x0400, false);
    ASSERT_TRUE(ev.valid && ev.dirty);
}

TEST(Cache, InvalidateReturnsDirty)
{
    Cache cache(smallConfig());
    cache.insert(0x0000, true);
    EXPECT_TRUE(cache.invalidate(0x0000));
    EXPECT_FALSE(cache.probe(0x0000));
    EXPECT_FALSE(cache.invalidate(0x0000));
}

TEST(Cache, PrefetchBitClearedOnDemandHit)
{
    Cache cache(smallConfig());
    cache.insert(0x0000, false, /*is_prefetch=*/true);
    const CacheLookup first = cache.access(0x0000, false);
    EXPECT_TRUE(first.hit);
    EXPECT_TRUE(first.wasPrefetched);
    const CacheLookup second = cache.access(0x0000, false);
    EXPECT_FALSE(second.wasPrefetched);
}

TEST(Cache, UnusedPrefetchEvictionReported)
{
    Cache cache(smallConfig());
    cache.insert(0x0000, false, /*is_prefetch=*/true);
    cache.insert(0x0200, false);
    const Eviction ev = cache.insert(0x0400, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_TRUE(ev.prefetchUnused);
}

TEST(Cache, ReinsertResidentLineNoEviction)
{
    Cache cache(smallConfig());
    cache.insert(0x0000, false);
    const Eviction ev = cache.insert(0x0000, true);
    EXPECT_FALSE(ev.valid);
}

TEST(Cache, FlushEmptiesEverything)
{
    Cache cache(smallConfig());
    cache.insert(0x0000, true);
    cache.insert(0x1000, false);
    EXPECT_EQ(cache.occupancy(), 2u);
    cache.flush();
    EXPECT_EQ(cache.occupancy(), 0u);
    EXPECT_FALSE(cache.probe(0x0000));
}

TEST(Cache, BadGeometryFatal)
{
    EXPECT_DEATH(Cache(CacheConfig{"t", 1000, 2, 64, 3}),
                 "cache");
    EXPECT_DEATH(Cache(CacheConfig{"t", 1024, 2, 48, 3}),
                 "power of two");
}

/** Property sweep: capacity/associativity invariants under random
 *  access streams. */
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CacheGeometry, OccupancyNeverExceedsCapacity)
{
    const auto [size_kb, assoc] = GetParam();
    Cache cache(CacheConfig{"t",
                            static_cast<std::uint64_t>(size_kb) * 1024,
                            assoc, 64, 3});
    const std::uint64_t capacity_lines = size_kb * 1024 / 64;
    Rng rng(size_kb * 31 + assoc);
    for (int i = 0; i < 20000; ++i) {
        const Addr addr = rng.range(64u << 20);
        if (!cache.access(addr, rng.chance(0.3)).hit)
            cache.insert(addr, false);
    }
    EXPECT_LE(cache.occupancy(), capacity_lines);
    EXPECT_GE(cache.occupancy(), capacity_lines / 2); // well exercised
}

TEST_P(CacheGeometry, InsertedLineIsResidentUntilEvicted)
{
    const auto [size_kb, assoc] = GetParam();
    Cache cache(CacheConfig{"t",
                            static_cast<std::uint64_t>(size_kb) * 1024,
                            assoc, 64, 3});
    // A working set that fits always hits after insertion.
    const int lines = size_kb * 1024 / 64;
    for (int i = 0; i < lines; ++i)
        cache.insert(static_cast<Addr>(i) * 64, false);
    for (int i = 0; i < lines; ++i)
        EXPECT_TRUE(cache.probe(static_cast<Addr>(i) * 64)) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(4, 2),
                      std::make_tuple(32, 8), std::make_tuple(64, 4),
                      std::make_tuple(1024, 8)));

} // namespace
} // namespace rab
